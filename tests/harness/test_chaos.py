"""Chaos tests: SIGKILLed sweeps converge, corrupt traces degrade.

The in-repo counterpart of ``tools/chaos_sweep.py``: a sweep of
deterministic experiments is SIGKILLed mid-run several times and
resumed; the merged results must be bit-identical to an uninterrupted
run, with journaled completions never re-executed. The trace-bundle
test pins the end-to-end corruption story for the replay store: a
garbage bundle is quarantined and the run falls back to fresh
execution with bit-identical stats.
"""

import json
import os
import subprocess
import sys
import textwrap
import time

from repro.config.presets import isrf4_config
from repro.machine import replay
from repro.machine.replay import TraceStore
from repro.store.chaos import CHAOS_ENV
from repro.store.journal import Journal
from tests.machine.test_backend_equivalence import RUNNERS
from tests.machine.test_golden_stats import fingerprint

SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))), "src")

#: A sweep of deterministic fakes, each slow enough for kills to land
#: mid-run. Always launched with resume=True (idempotent: the first
#: run simply begins a fresh journal).
SWEEP_SCRIPT = textwrap.dedent("""
    import json, sys, time
    sys.path.insert(0, sys.argv[1])
    from repro.harness import runner

    journal, out, exec_log = sys.argv[2], sys.argv[3], sys.argv[4]

    def make(name, duration):
        def fake():
            with open(exec_log, "a") as handle:
                handle.write(name + "\\n")
            time.sleep(duration)
            return {"text": f"{name} finished",
                    "value": sum(ord(c) for c in name)}
        return fake

    runner.EXPERIMENTS = {
        name: make(name, 0.4)
        for name in ("chaosa", "chaosb", "chaosc", "chaosd")
    }
    print("ready", flush=True)
    results, timings = runner.run_many(
        list(runner.EXPERIMENTS), jobs=2,
        sweep_journal=journal, resume=True,
    )
    with open(out, "w") as handle:
        json.dump(results, handle, sort_keys=True)
""")


def run_sweep(journal, out, exec_log, kill_after=None):
    """One sweep process; optionally SIGKILL it ``kill_after`` seconds
    after it reports ready. Returns (returncode_or_None, killed)."""
    proc = subprocess.Popen(
        [sys.executable, "-c", SWEEP_SCRIPT, SRC, journal, out,
         exec_log],
        stdout=subprocess.PIPE, text=True,
    )
    try:
        assert proc.stdout.readline().strip() == "ready"
        if kill_after is None:
            proc.wait(timeout=120)
            return proc.returncode, False
        try:
            proc.wait(timeout=kill_after)
            return proc.returncode, False
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            return None, True
    finally:
        proc.stdout.close()
        if proc.poll() is None:
            proc.kill()
            proc.wait()


class TestKilledSweepConverges:
    def test_sigkilled_and_resumed_matches_uninterrupted(self, tmp_path):
        names = ["chaosa", "chaosb", "chaosc", "chaosd"]
        # Ground truth: one uninterrupted run.
        code, killed = run_sweep(
            str(tmp_path / "ref.journal"), str(tmp_path / "ref.json"),
            str(tmp_path / "ref.log"),
        )
        assert code == 0 and not killed
        with open(tmp_path / "ref.json") as handle:
            reference = json.load(handle)

        # Chaos: SIGKILL the sweep at several points, then finish it.
        journal = str(tmp_path / "chaos.journal")
        out = str(tmp_path / "chaos.json")
        log = str(tmp_path / "chaos.log")
        kills = 0
        for delay in (0.5, 0.9, 0.7):
            _, killed = run_sweep(journal, out, log, kill_after=delay)
            if not killed:
                break
            kills += 1
        code, killed = run_sweep(journal, out, log)
        assert code == 0 and not killed
        with open(out) as handle:
            resumed = json.load(handle)

        # Bit-identical merged results, no experiment lost.
        assert resumed == reference
        assert set(resumed) == set(names)

        # Zero re-execution of journaled completions: the journal never
        # shows a launch after a done, and each name completes once.
        records, _dropped = Journal(journal).read()
        done = set()
        done_counts = {}
        for record in records:
            name = record.get("name")
            if record.get("event") == "done":
                done.add(name)
                done_counts[name] = done_counts.get(name, 0) + 1
            elif record.get("event") == "launch":
                assert name not in done, \
                    f"{name} re-launched after completion"
        assert done == set(names)
        assert all(count == 1 for count in done_counts.values())

        # Interrupted attempts may re-run (their completion was never
        # journaled), but each name needs at most kills+1 executions.
        with open(log) as handle:
            ran = [line.strip() for line in handle if line.strip()]
        for name in names:
            assert 1 <= ran.count(name) <= kills + 1


class TestCorruptTraceBundle:
    """Satellite: a torn replay trace degrades to fresh execution."""

    def record(self, store, config):
        with replay.session(store, "fft", config, "test") as sess:
            result = RUNNERS["fft"](config).require_verified()
            assert sess.mode == "record"
        return result

    def test_quarantined_then_reexecuted_bit_identically(self, tmp_path):
        store = TraceStore(str(tmp_path))
        config = isrf4_config(timing_source="replay")
        recorded = self.record(store, config)
        key = store.key("fft", config, "test")
        bundle_path = store._store.path(key)
        assert os.path.exists(bundle_path)

        # Tear the bundle: garbage bytes where gzip pickle should be.
        with open(bundle_path, "wb") as handle:
            handle.write(b"\x1f\x8b garbage, not a bundle")

        # The next session must fall back to fresh execution (record
        # mode), quarantine the torn bundle, and produce stats
        # bit-identical to the original run.
        with replay.session(store, "fft", config, "test") as sess:
            reexecuted = RUNNERS["fft"](config).require_verified()
            assert sess.mode == "record"
        assert fingerprint(reexecuted.stats) == \
            fingerprint(recorded.stats)
        assert store.stats()["quarantined"] >= 1

        # The re-recorded bundle is good again: replay mode resumes.
        with replay.session(store, "fft", config, "test") as sess:
            replayed = RUNNERS["fft"](config).require_verified()
            assert sess.mode == "replay"
        assert fingerprint(replayed.stats) == \
            fingerprint(recorded.stats)

    def test_wrong_pickle_with_valid_checksum_quarantined(self,
                                                          tmp_path):
        """Corruption below the checksum layer: a validly stored entry
        whose payload is not a TraceBundle."""
        import gzip
        import pickle

        store = TraceStore(str(tmp_path))
        config = isrf4_config(timing_source="replay")
        key = store.key("fft", config, "test")
        store._store.put_bytes(
            key, gzip.compress(pickle.dumps({"not": "a bundle"}))
        )
        assert store.load("fft", config, "test") is None
        assert store.stats()["quarantined"] == 1


class TestStoreChaosThroughResultCache:
    """Fault injection composes with the pickle codec layer."""

    def test_torn_cache_entry_recomputed_not_served(self, tmp_path,
                                                    monkeypatch):
        from repro.harness.resultcache import ResultCache

        monkeypatch.setenv(CHAOS_ENV, "seed=3,torn=1.0")
        cache = ResultCache(str(tmp_path))
        config = isrf4_config()
        cache.put("fft", config, "small", {"stats": [1, 2, 3]})
        # Torn commit: detected on read, never served.
        assert cache.get("fft", config, "small") is None
        assert cache.quarantine_count() == 1

    def test_enospc_cache_put_is_nonfatal(self, tmp_path, monkeypatch):
        from repro.harness.resultcache import ResultCache

        monkeypatch.setenv(CHAOS_ENV, "seed=3,enospc=1.0")
        cache = ResultCache(str(tmp_path))
        config = isrf4_config()
        cache.put("fft", config, "small", {"stats": [1, 2, 3]})
        assert cache.get("fft", config, "small") is None
        assert cache.stats()["tmp"] == 0  # staging cleaned up
