"""Harness experiment runners (the cheap, simulation-light ones)."""

import pytest

from repro.harness import figures


class TestScales:
    def test_known_scales(self):
        for scale in ("small", "medium", "paper"):
            assert scale in figures.SCALES
        assert figures.SCALES["paper"]["fft_n"] == 64
        assert figures.SCALES["paper"]["sort_n"] == 4096
        assert figures.SCALES["paper"]["filter_size"] == (256, 256)

    def test_default_scale_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert figures.default_scale() == "small"
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert figures.default_scale() == "medium"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            figures.default_scale()

    def test_unknown_benchmark_rejected(self):
        from repro.config import base_config

        with pytest.raises(ValueError):
            figures.run_benchmark("nope", base_config(), "small")


class TestStaticExperiments:
    def test_table3(self):
        result = figures.table3()
        assert len(result["rows"]) == 4
        assert "Table 3" in result["text"]

    def test_table4(self):
        result = figures.table4()
        names = [row[0] for row in result["rows"]]
        assert names == ["IG_SML", "IG_SCL", "IG_DMS", "IG_DCS"]

    def test_area_overheads(self):
        result = figures.area_overheads()
        assert 0.09 < result["overheads"]["ISRF1"] < 0.13

    def test_energy_table(self):
        result = figures.energy_table()
        assert "5.000" in result["text"]

    def test_figure14_shapes(self):
        result = figures.figure14(separations=(2, 6, 10))
        data = result["data"]
        assert data["Rijndael"][10] > data["Rijndael"][2]
        assert data["Filter"][10] == pytest.approx(data["Filter"][2])

    def test_figure17_small(self):
        result = figures.figure17(subarrays=(1, 4), fifo_sizes=(8,),
                                  cycles=400)
        assert result["data"][(4, 8)] > result["data"][(1, 8)]

    def test_figure18_small(self):
        result = figures.figure18(ports=(1, 2), occupancies=(0.0,),
                                  cycles=400)
        assert result["data"][(2, 0.0)] > result["data"][(1, 0.0)]


class TestBenchmarkCache:
    def test_reliability(self):
        result = figures.reliability()
        # 4 machine configurations x (parity, secded).
        assert len(result["rows"]) == 8
        for (name, protection), entry in result["data"].items():
            assert entry["injected"] > 0
            assert entry["uncorrected"] == 0  # both schemes recover
            if protection == "secded":
                assert entry["corrected"] == entry["injected"]
                assert entry["retries"] == 0
            else:
                assert entry["corrected"] == 0
                assert entry["retries"] == entry["injected"]
            assert entry["srf_area_overhead"] > 0
            assert entry["energy_ratio"] > 1.0
        secded = result["data"][("ISRF4", "secded")]
        parity = result["data"][("ISRF4", "parity")]
        # SEC-DED pays more than parity, in both area and energy.
        assert secded["srf_area_overhead"] > parity["srf_area_overhead"]
        assert secded["energy_ratio"] > parity["energy_ratio"]

    def test_run_benchmark_caches(self):
        from repro.config import isrf4_config

        figures.clear_cache()
        cfg = isrf4_config()
        first = figures.run_benchmark("Sort", cfg, "small")
        second = figures.run_benchmark("Sort", cfg, "small")
        assert first is second
        figures.clear_cache()


class TestTraceExperiment:
    def test_trace_writes_valid_chrome_json(self, tmp_path):
        import json

        from repro import observe

        path = tmp_path / "out.json"
        figures.set_trace_path(str(path))
        try:
            result = figures.trace()
        finally:
            figures.set_trace_path(None)
        assert result["trace_path"] == str(path)
        assert result["events"] > 0
        payload = json.loads(path.read_text())
        counts = observe.validate_chrome_trace(payload)
        assert counts["B"] > 0 and counts["B"] == counts["E"]
        # Both machines appear as named processes, profiled cycle
        # attribution rides along in the table rows.
        labels = {row[0] for row in result["rows"]}
        assert labels == {"Base", "ISRF4"}
        assert all(row[1] > 0 for row in result["rows"])
        assert not list(tmp_path.glob(f"*{observe.STAGING_SUFFIX}"))

    def test_trace_path_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert figures.trace_output_path() == figures.DEFAULT_TRACE_PATH
        monkeypatch.setenv("REPRO_TRACE", "path=env.json")
        assert figures.trace_output_path() == "env.json"
        figures.set_trace_path("cli.json")
        try:
            assert figures.trace_output_path() == "cli.json"
        finally:
            figures.set_trace_path(None)
