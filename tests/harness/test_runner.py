"""The experiment registry, parallel runner, and on-disk result cache."""

import dataclasses
import os

import pytest

from repro.config.machine import MachineConfig
from repro.config.presets import isrf4_config
from repro.harness import figures
from repro.harness.resultcache import ResultCache, config_fingerprint
from repro.harness.runner import (
    FAIL_EXPERIMENT_ENV,
    HANG_EXPERIMENT_ENV,
    ExperimentError,
    experiment_names,
    failed,
    run_experiment,
    run_many,
)


class TestRegistry:
    def test_names_in_report_order(self):
        names = experiment_names()
        assert names[0] == "check"  # the static-analysis gate runs first
        assert names[1] == "table3"
        assert names[-1] == "trace"
        assert "headline" in names
        assert "fig11" in names and "fig18" in names

    def test_run_experiment_returns_result_dict(self):
        result = run_experiment("table3")
        assert "text" in result

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("nope")


class TestRunMany:
    def test_serial_run_returns_results_and_timings(self):
        results, timings = run_many(["area", "table3"])
        assert list(results) == ["area", "table3"]
        assert set(timings) == {"area", "table3"}
        assert all(t >= 0 for t in timings.values())
        assert "text" in results["area"]

    def test_unknown_name_rejected_up_front(self):
        with pytest.raises(ValueError, match="unknown experiments: nope"):
            run_many(["table3", "nope"])

    def test_parallel_run_matches_serial(self):
        serial, _ = run_many(["table3", "area"], jobs=1)
        parallel, timings = run_many(["table3", "area"], jobs=2)
        assert list(parallel) == ["table3", "area"]
        assert parallel["table3"]["text"] == serial["table3"]["text"]
        assert parallel["area"]["text"] == serial["area"]["text"]
        assert set(timings) == {"table3", "area"}


class TestGracefulDegradation:
    def test_serial_failure_keeps_other_results(self, monkeypatch):
        monkeypatch.setenv(FAIL_EXPERIMENT_ENV, "area")
        results, timings = run_many(["table3", "area"])
        assert "text" in results["table3"]
        assert failed(results["area"])
        assert results["area"]["attempts"] == 1
        assert "forced failure" in results["area"]["error"]
        assert set(timings) == {"table3", "area"}

    def test_serial_fail_fast_raises(self, monkeypatch):
        monkeypatch.setenv(FAIL_EXPERIMENT_ENV, "table3")
        with pytest.raises(ExperimentError, match="table3"):
            run_many(["table3", "area"], fail_fast=True)

    def test_isolated_failure_is_retried_then_recorded(self, monkeypatch):
        monkeypatch.setenv(FAIL_EXPERIMENT_ENV, "area")
        results, _ = run_many(["table3", "area"], jobs=2)
        assert "text" in results["table3"]
        assert failed(results["area"])
        assert results["area"]["attempts"] == 2

    def test_worker_crash_is_isolated(self, monkeypatch):
        # A worker dying outright (not an exception it can report) must
        # still leave the other experiments' results intact.
        monkeypatch.setenv(FAIL_EXPERIMENT_ENV, "area")
        monkeypatch.setattr(
            "repro.harness.runner._apply_test_hooks",
            lambda name: name == "area" and os._exit(17),
        )
        results, _ = run_many(["table3", "area"], jobs=2)
        assert "text" in results["table3"]
        assert failed(results["area"])
        assert "worker crashed" in results["area"]["error"]

    def test_hang_is_killed_by_timeout(self, monkeypatch):
        monkeypatch.setenv(HANG_EXPERIMENT_ENV, "area")
        results, _ = run_many(["table3", "area"], jobs=2, timeout=1.0)
        assert "text" in results["table3"]
        assert failed(results["area"])
        assert "timed out" in results["area"]["error"]
        assert results["area"]["attempts"] == 2

    def test_isolated_fail_fast_raises(self, monkeypatch):
        monkeypatch.setenv(FAIL_EXPERIMENT_ENV, "table3")
        with pytest.raises(ExperimentError, match="table3"):
            run_many(["table3", "area"], jobs=2, fail_fast=True)

    def test_crashed_workers_staged_trace_is_swept(self, monkeypatch,
                                                   tmp_path):
        # A worker that dies mid-export leaves <out>.<exp>.trace.tmp in
        # the cache dir; the runner must sweep exactly the failed
        # experiment's leftovers and spare everyone else's.
        from repro.observe import STAGING_SUFFIX

        orphan = tmp_path / f"out.json.area{STAGING_SUFFIX}"
        other = tmp_path / f"out.json.table3{STAGING_SUFFIX}"
        orphan.write_text("partial")
        other.write_text("partial")
        monkeypatch.setenv(FAIL_EXPERIMENT_ENV, "area")
        results, _ = run_many(["table3", "area"], jobs=2,
                              cache_dir=str(tmp_path))
        assert failed(results["area"])
        assert not orphan.exists()
        assert other.exists()

    def test_staged_trace_swept_without_cache_dir(self, monkeypatch,
                                                  tmp_path):
        # Regression: the sweep only ran when a cache directory was
        # configured, but under --no-cache the trace experiment stages
        # next to its output file — a crashed worker's leftovers were
        # never cleaned up there.
        from repro.observe import STAGING_SUFFIX

        monkeypatch.setattr(figures, "_trace_path",
                            str(tmp_path / "out.json"))
        orphan = tmp_path / f"out.json.area{STAGING_SUFFIX}"
        other = tmp_path / f"out.json.table3{STAGING_SUFFIX}"
        orphan.write_text("partial")
        other.write_text("partial")
        monkeypatch.setenv(FAIL_EXPERIMENT_ENV, "area")
        results, _ = run_many(["area"], jobs=2, cache_dir=None)
        assert failed(results["area"])
        assert not orphan.exists()
        assert other.exists()  # only the failed experiment's are swept

    def test_serial_fail_fast_carries_consistent_results(self,
                                                         monkeypatch):
        # Regression: the serial runner raised before recording the
        # failing experiment's timing, so results and timings disagreed.
        monkeypatch.setenv(FAIL_EXPERIMENT_ENV, "area")
        with pytest.raises(ExperimentError) as info:
            run_many(["table3", "area"], fail_fast=True)
        exc = info.value
        assert exc.experiment == "area"
        assert "text" in exc.results["table3"]
        assert failed(exc.results["area"])
        assert set(exc.timings) == set(exc.results)
        assert all(t >= 0 for t in exc.timings.values())

    def test_isolated_fail_fast_carries_consistent_results(self,
                                                           monkeypatch):
        monkeypatch.setenv(FAIL_EXPERIMENT_ENV, "area")
        with pytest.raises(ExperimentError) as info:
            run_many(["table3", "area"], jobs=2, fail_fast=True)
        exc = info.value
        assert failed(exc.results["area"])
        assert set(exc.timings) == set(exc.results)
        assert "area" in exc.timings

    def test_failed_predicate(self):
        assert failed({"status": "failed", "error": "x", "attempts": 2})
        assert not failed({"text": "fine"})
        assert not failed("not even a dict")


class TestCodeFingerprintMemo:
    def test_second_cache_does_no_source_tree_io(self, monkeypatch,
                                                 tmp_path):
        # Regression: every ResultCache() re-walked and re-hashed the
        # whole source tree — per worker process, per experiment. The
        # fingerprint is memoized per process now.
        from repro import fingerprint

        first = fingerprint.code_fingerprint()  # warm the memo

        def boom(*_args, **_kwargs):
            raise AssertionError("re-walked the source tree")

        monkeypatch.setattr(fingerprint, "_compute_code_fingerprint", boom)
        assert fingerprint.code_fingerprint() == first
        cache = ResultCache(str(tmp_path))  # would raise without the memo
        assert cache.key("a", isrf4_config(), "small")


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        config = isrf4_config()
        assert cache.get("FFT 2D", config, "small") is None
        payload = {"anything": "picklable"}
        cache.put("FFT 2D", config, "small", payload)
        assert cache.get("FFT 2D", config, "small") == payload

    def test_key_distinguishes_config_and_scale(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        config = isrf4_config()
        assert cache.key("a", config, "small") != cache.key("a", config,
                                                            "medium")
        assert cache.key("a", config, "small") != cache.key("b", config,
                                                            "small")
        variant = config.replace(fast_forward=False)
        assert cache.key("a", config, "small") != cache.key("a", variant,
                                                            "small")
        backend = config.replace(backend="vector")
        assert cache.key("a", config, "small") != cache.key("a", backend,
                                                            "small")

    def test_key_sees_repr_hidden_fields(self, tmp_path):
        """Regression: keys were built from ``repr(config)``, which
        silently drops any field declared with ``repr=False`` — two
        different configs aliased to the same cache entry. The key must
        fingerprint every dataclass field."""

        @dataclasses.dataclass(frozen=True)
        class HiddenKnobConfig(MachineConfig):
            hidden_knob: int = dataclasses.field(default=0, repr=False)

        plain = HiddenKnobConfig()
        knobbed = HiddenKnobConfig(hidden_knob=1)
        assert repr(plain) == repr(knobbed)  # repr cannot tell them apart
        assert config_fingerprint(plain) != config_fingerprint(knobbed)
        cache = ResultCache(str(tmp_path))
        assert (cache.key("a", plain, "small")
                != cache.key("a", knobbed, "small"))

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        config = isrf4_config()
        cache.put("x", config, "small", [1, 2, 3])
        path = cache._path(cache.key("x", config, "small"))
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert cache.get("x", config, "small") is None

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        config = isrf4_config()
        cache.put("x", config, "small", 1)
        cache.put("y", config, "small", 2)
        assert cache.clear() == 2
        assert cache.get("x", config, "small") is None

    def test_unpicklable_result_leaves_no_temp_file(self, tmp_path):
        # Regression: a pickling failure used to leak the .tmp file.
        cache = ResultCache(str(tmp_path))
        config = isrf4_config()
        cache.put("x", config, "small", lambda: None)  # unpicklable
        assert not list(tmp_path.glob("*.tmp"))
        assert not list(tmp_path.glob("*.pkl"))
        assert cache.get("x", config, "small") is None

    def test_corrupt_entry_is_quarantined_not_reparsed(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        config = isrf4_config()
        cache.put("x", config, "small", [1])
        path = cache._path(cache.key("x", config, "small"))
        with open(path, "wb") as handle:
            handle.write(b"garbage")
        assert cache.get("x", config, "small") is None
        assert not os.path.exists(path)  # moved aside, not left in place
        assert os.path.exists(path + ".bad")
        # A later put recreates the entry cleanly.
        cache.put("x", config, "small", [2])
        assert cache.get("x", config, "small") == [2]

    def test_clear_counts_only_real_entries(self, tmp_path):
        # Regression: leftover .tmp files used to inflate the count.
        cache = ResultCache(str(tmp_path))
        config = isrf4_config()
        cache.put("x", config, "small", 1)
        (tmp_path / "leftover.tmp").write_bytes(b"")
        (tmp_path / "stale.pkl.bad").write_bytes(b"garbage")
        assert cache.clear() == 1
        # Debris is deleted regardless; only the store's own metadata
        # (manifest journal, lock file) may remain.
        from repro.store.durable import LOCK_NAME, MANIFEST_NAME

        leftover = {p.name for p in tmp_path.iterdir()}
        assert leftover <= {MANIFEST_NAME, LOCK_NAME}

    def test_run_benchmark_uses_installed_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        figures.set_result_cache(cache)
        try:
            config = isrf4_config()
            figures.clear_cache()
            first = figures.run_benchmark("FFT 2D", config, "small")
            # A fresh in-memory cache must hit the disk entry and return
            # an equal (deserialised) result without re-simulating.
            figures.clear_cache()
            second = figures.run_benchmark("FFT 2D", config, "small")
            assert second.stats == first.stats
            assert cache.get("FFT 2D", config, "small") is not None
        finally:
            figures.set_result_cache(None)
            figures.clear_cache()
