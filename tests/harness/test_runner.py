"""The experiment registry, parallel runner, and on-disk result cache."""

import pytest

from repro.config.presets import isrf4_config
from repro.harness import figures
from repro.harness.resultcache import ResultCache
from repro.harness.runner import (
    EXPERIMENTS,
    experiment_names,
    run_experiment,
    run_many,
)


class TestRegistry:
    def test_names_in_report_order(self):
        names = experiment_names()
        assert names[0] == "table3"
        assert names[-1] == "headline"
        assert "fig11" in names and "fig18" in names

    def test_run_experiment_returns_result_dict(self):
        result = run_experiment("table3")
        assert "text" in result

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("nope")


class TestRunMany:
    def test_serial_run_returns_results_and_timings(self):
        results, timings = run_many(["area", "table3"])
        assert list(results) == ["area", "table3"]
        assert set(timings) == {"area", "table3"}
        assert all(t >= 0 for t in timings.values())
        assert "text" in results["area"]

    def test_unknown_name_rejected_up_front(self):
        with pytest.raises(ValueError, match="unknown experiments: nope"):
            run_many(["table3", "nope"])

    def test_parallel_run_matches_serial(self):
        serial, _ = run_many(["table3", "area"], jobs=1)
        parallel, timings = run_many(["table3", "area"], jobs=2)
        assert list(parallel) == ["table3", "area"]
        assert parallel["table3"]["text"] == serial["table3"]["text"]
        assert parallel["area"]["text"] == serial["area"]["text"]
        assert set(timings) == {"table3", "area"}


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        config = isrf4_config()
        assert cache.get("FFT 2D", config, "small") is None
        payload = {"anything": "picklable"}
        cache.put("FFT 2D", config, "small", payload)
        assert cache.get("FFT 2D", config, "small") == payload

    def test_key_distinguishes_config_and_scale(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        config = isrf4_config()
        assert cache.key("a", config, "small") != cache.key("a", config,
                                                            "medium")
        assert cache.key("a", config, "small") != cache.key("b", config,
                                                            "small")
        variant = config.replace(fast_forward=False)
        assert cache.key("a", config, "small") != cache.key("a", variant,
                                                            "small")

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        config = isrf4_config()
        cache.put("x", config, "small", [1, 2, 3])
        path = cache._path(cache.key("x", config, "small"))
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert cache.get("x", config, "small") is None

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        config = isrf4_config()
        cache.put("x", config, "small", 1)
        cache.put("y", config, "small", 2)
        assert cache.clear() == 2
        assert cache.get("x", config, "small") is None

    def test_run_benchmark_uses_installed_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        figures.set_result_cache(cache)
        try:
            config = isrf4_config()
            figures.clear_cache()
            first = figures.run_benchmark("FFT 2D", config, "small")
            # A fresh in-memory cache must hit the disk entry and return
            # an equal (deserialised) result without re-simulating.
            figures.clear_cache()
            second = figures.run_benchmark("FFT 2D", config, "small")
            assert second.stats == first.stats
            assert cache.get("FFT 2D", config, "small") is not None
        finally:
            figures.set_result_cache(None)
            figures.clear_cache()
