"""Text report rendering."""

from repro.harness import render_grid, render_table


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table("Title", ["name", "value"],
                            [["a", 1.5], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.500" in text and "22" in text

    def test_floats_formatted_to_three_places(self):
        text = render_table("t", ["x"], [[0.123456]])
        assert "0.123" in text and "0.1234" not in text

    def test_empty_rows(self):
        text = render_table("t", ["a", "b"], [])
        assert text.splitlines()[0] == "t"

    def test_columns_wide_enough_for_all_cells(self):
        text = render_table("t", ["a"], [["very-long-cell-content"]])
        header_line = text.splitlines()[1]
        assert len(header_line) >= len("very-long-cell-content")


class TestRenderGrid:
    def test_grid_layout(self):
        values = {(r, c): r * c for r in (1, 2) for c in (3, 4)}
        text = render_grid("G", "row", [1, 2], "col", [3, 4], values)
        lines = text.splitlines()
        assert lines[0] == "G"
        assert "row\\col" in lines[1]
        assert any("8" in line for line in lines)  # 2*4
