"""The ``python -m repro.harness`` entry point."""

import json

from repro.harness.__main__ import main


class TestMain:
    def test_subset_runs_and_prints(self, capsys):
        assert main(["table3", "area"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "area overheads" in out
        assert "Figure 11" not in out

    def test_json_export(self, tmp_path, capsys):
        path = tmp_path / "results.json"
        assert main(["table4", "energy", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["scale"] in ("small", "medium", "paper")
        assert "table4" in data["experiments"]
        assert "energy" in data["experiments"]
        rows = data["experiments"]["table4"]["rows"]
        assert rows[0][0] == "IG_SML"

    def test_fig17_via_cli(self, capsys):
        assert main(["fig17"]) == 0
        assert "Figure 17" in capsys.readouterr().out


class TestArgumentErrors:
    def test_json_without_path_fails_with_usage(self, capsys):
        assert main(["table3", "--json"]) == 2
        err = capsys.readouterr().err
        assert "--json requires a value" in err
        assert "usage:" in err

    def test_json_bad_directory_fails_before_running(self, tmp_path,
                                                     capsys):
        # Regression: a bad --json path was only discovered after every
        # experiment had run, discarding all their results.
        target = tmp_path / "missing" / "deeper" / "out.json"
        assert main(["table3", "--json", str(target)]) == 2
        captured = capsys.readouterr()
        assert "does not exist" in captured.err
        assert "usage:" in captured.err
        assert "Table 3" not in captured.out  # nothing ran

    def test_unknown_experiment_fails_with_usage(self, capsys):
        assert main(["definitely-not-an-experiment"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "usage:" in err

    def test_unknown_option_fails(self, capsys):
        assert main(["--frobnicate"]) == 2
        assert "unknown option" in capsys.readouterr().err

    def test_bad_jobs_value_fails(self, capsys):
        assert main(["table3", "--jobs", "many"]) == 2
        assert "--jobs needs an integer" in capsys.readouterr().err

    def test_nonpositive_jobs_fails(self, capsys):
        assert main(["table3", "--jobs", "0"]) == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_bad_timeout_value_fails(self, capsys):
        assert main(["table3", "--timeout", "soon"]) == 2
        assert "--timeout needs a number" in capsys.readouterr().err

    def test_nonpositive_timeout_fails(self, capsys):
        assert main(["table3", "--timeout", "0"]) == 2
        assert "--timeout must be positive" in capsys.readouterr().err


class TestGracefulDegradation:
    def test_failure_reported_and_exit_nonzero(self, monkeypatch, capsys):
        from repro.harness.runner import FAIL_EXPERIMENT_ENV

        monkeypatch.setenv(FAIL_EXPERIMENT_ENV, "area")
        assert main(["table3", "area", "--no-cache"]) == 1
        captured = capsys.readouterr()
        assert "Table 3" in captured.out  # the healthy experiment ran
        assert "FAILED area" in captured.out
        assert "1 experiment(s) failed: area" in captured.err

    def test_json_records_structured_failure(self, monkeypatch, tmp_path,
                                             capsys):
        from repro.harness.runner import FAIL_EXPERIMENT_ENV

        monkeypatch.setenv(FAIL_EXPERIMENT_ENV, "area")
        path = tmp_path / "out.json"
        assert main(["table3", "area", "--no-cache", "--jobs", "2",
                     "--json", str(path)]) == 1
        data = json.loads(path.read_text())
        assert data["experiments"]["table3"]["status"] == "ok"
        record = data["experiments"]["area"]
        assert record["status"] == "failed"
        assert record["attempts"] == 2
        assert "forced failure" in record["error"]

    def test_fail_fast_aborts_with_exit_1(self, monkeypatch, capsys):
        from repro.harness.runner import FAIL_EXPERIMENT_ENV

        monkeypatch.setenv(FAIL_EXPERIMENT_ENV, "table3")
        assert main(["table3", "area", "--no-cache", "--fail-fast"]) == 1
        assert "experiment 'table3' failed" in capsys.readouterr().err


class TestNewOptions:
    def test_list_prints_experiment_names(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out.split()
        assert "table3" in out and "headline" in out

    def test_json_includes_jobs_and_timings(self, tmp_path, capsys):
        import json

        path = tmp_path / "results.json"
        assert main(["table3", "--no-cache", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["jobs"] == 1
        assert set(data["timings_s"]) == {"table3"}
        assert data["timings_s"]["table3"] >= 0
        assert "table3" in data["experiments"]

    def test_cache_dir_populated_and_reused(self, tmp_path, capsys):
        from repro.harness import figures

        cache_dir = tmp_path / "cache"
        figures.clear_cache()  # force simulation so the cache is written
        assert main(["fig11", "--cache-dir", str(cache_dir)]) == 0
        assert list(cache_dir.glob("*.pkl"))
        # Second run: a cold in-memory cache is served from disk.
        figures.clear_cache()
        assert main(["fig11", "--cache-dir", str(cache_dir)]) == 0

    def test_trace_path_requires_value(self, capsys):
        assert main(["--trace-path"]) == 2
        assert "requires a value" in capsys.readouterr().err

    def test_trace_path_reaches_the_experiment(self, tmp_path, capsys):
        import json

        path = tmp_path / "cli-trace.json"
        assert main(["trace", "--no-cache", "--trace-path",
                     str(path)]) == 0
        assert str(path) in capsys.readouterr().out
        assert json.loads(path.read_text())["traceEvents"]
