"""The ``python -m repro.harness`` entry point."""

import json

from repro.harness.__main__ import main


class TestMain:
    def test_subset_runs_and_prints(self, capsys):
        assert main(["table3", "area"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "area overheads" in out
        assert "Figure 11" not in out

    def test_json_export(self, tmp_path, capsys):
        path = tmp_path / "results.json"
        assert main(["table4", "energy", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["scale"] in ("small", "medium", "paper")
        assert "table4" in data["experiments"]
        assert "energy" in data["experiments"]
        rows = data["experiments"]["table4"]["rows"]
        assert rows[0][0] == "IG_SML"

    def test_fig17_via_cli(self, capsys):
        assert main(["fig17"]) == 0
        assert "Figure 17" in capsys.readouterr().out
