"""FUNCTIONAL_FIELDS ∪ TIMING_ONLY_FIELDS exactly partitions the config.

The replay cache and the result cache both key on this classification:
a field in neither set would silently drop out of the functional
fingerprint; a field in both would be contradictory. The partition is
enforced statically (selfcheck codes SC101–SC104) and at runtime
(:func:`repro.fingerprint.check_field_partition` raising through
``ReplayError``); this test pins it at the plain-pytest layer so a
break fails even with the linter skipped.
"""

import dataclasses

import pytest

from repro.config.machine import MachineConfig
from repro.fingerprint import FUNCTIONAL_FIELDS, check_field_partition
from repro.machine.replay import TIMING_ONLY_FIELDS


def field_names():
    return {field.name for field in dataclasses.fields(MachineConfig)}


def test_partition_is_exact():
    names = field_names()
    assert FUNCTIONAL_FIELDS | TIMING_ONLY_FIELDS == names
    assert not FUNCTIONAL_FIELDS & TIMING_ONLY_FIELDS


def test_check_field_partition_is_clean():
    assert check_field_partition(TIMING_ONLY_FIELDS) == []


@pytest.mark.parametrize("missing", sorted(FUNCTIONAL_FIELDS)[:2])
def test_dropping_functional_field_is_reported(missing):
    problems = check_field_partition(
        TIMING_ONLY_FIELDS, functional=FUNCTIONAL_FIELDS - {missing}
    )
    assert any(missing in problem for problem in problems)


def test_dropped_from_both_sets_is_reported():
    # The acceptance scenario: a field deleted from both classification
    # sets must be caught as unclassified.
    problems = check_field_partition(
        TIMING_ONLY_FIELDS - {"sanitize"},
        functional=FUNCTIONAL_FIELDS - {"sanitize"},
    )
    assert any(
        "neither" in problem and "sanitize" in problem
        for problem in problems
    )


def test_overlap_is_reported():
    problems = check_field_partition(
        TIMING_ONLY_FIELDS | {"srf_mode"}
    )
    assert any(
        "srf_mode" in problem and "both" in problem for problem in problems
    )
