"""The four Table 2 machine configurations."""

import pytest

from repro.config import (
    all_configs,
    base_config,
    cache_config,
    isrf1_config,
    isrf4_config,
)
from repro.config.machine import SrfMode


class TestTable2Presets:
    def test_base_is_sequential_dram_backed(self):
        cfg = base_config()
        assert cfg.srf_mode is SrfMode.SEQUENTIAL_ONLY
        assert not cfg.has_cache
        assert not cfg.supports_indexing

    def test_isrf1_single_word_inlane(self):
        cfg = isrf1_config()
        assert cfg.supports_indexing
        assert cfg.inlane_indexed_bandwidth == 1
        assert cfg.crosslane_indexed_bandwidth == 1

    def test_isrf4_four_words_inlane(self):
        cfg = isrf4_config()
        assert cfg.inlane_indexed_bandwidth == 4
        assert cfg.subarrays_per_bank == 4
        assert cfg.crosslane_indexed_bandwidth == 1

    def test_cache_config_has_cache(self):
        cfg = cache_config()
        assert cfg.has_cache
        assert not cfg.supports_indexing
        assert cfg.cache_associativity == 4
        assert cfg.cache_banks == 4
        assert cfg.cache_line_words == 2

    def test_shared_table3_parameters(self):
        for cfg in all_configs().values():
            assert cfg.lanes == 8
            assert cfg.clock_hz == 1e9
            assert cfg.srf_bytes == 128 * 1024
            assert cfg.peak_sequential_srf_words_per_cycle == 32
            assert cfg.srf_sequential_latency == 3
            assert cfg.stream_buffer_words == 8

    def test_indexed_latencies_match_table3(self):
        for make in (isrf1_config, isrf4_config):
            cfg = make()
            assert cfg.inlane_indexed_latency == 4
            assert cfg.crosslane_indexed_latency == 6
            assert cfg.address_fifo_words == 8

    def test_all_configs_order_and_names(self):
        assert list(all_configs()) == ["Base", "ISRF1", "ISRF4", "Cache"]

    def test_overrides_are_applied_and_validated(self):
        cfg = isrf4_config(address_fifo_words=4)
        assert cfg.address_fifo_words == 4
        with pytest.raises(Exception):
            isrf4_config(lanes=0)
