"""Tests for MachineConfig validation and derived quantities."""

import pytest

from repro.config import MachineConfig, SrfMode, WORD_BYTES
from repro.errors import ConfigurationError


class TestDerivedQuantities:
    def test_srf_words_128kb(self):
        cfg = MachineConfig()
        assert cfg.srf_words == 128 * 1024 // WORD_BYTES == 32768

    def test_bank_words_divide_across_lanes(self):
        cfg = MachineConfig()
        assert cfg.bank_words == 32768 // 8 == 4096

    def test_subarray_words(self):
        cfg = MachineConfig()
        assert cfg.subarray_words == 4096 // 4 == 1024

    def test_sequential_block_is_n_by_m(self):
        cfg = MachineConfig()
        assert cfg.sequential_block_words == 8 * 4 == 32

    def test_peak_sequential_bandwidth_words_per_cycle(self):
        # Table 3: peak sequential SRF bandwidth 32 words/cycle (128 GB/s).
        cfg = MachineConfig()
        assert cfg.peak_sequential_srf_words_per_cycle == 32

    def test_dram_words_per_cycle_matches_9_14_gbps(self):
        cfg = MachineConfig()
        assert cfg.dram_words_per_cycle == pytest.approx(9.14e9 / 1e9 / 4)

    def test_cache_words_per_cycle_matches_16_gbps(self):
        cfg = MachineConfig(has_cache=True)
        assert cfg.cache_words_per_cycle == pytest.approx(4.0)

    def test_peak_flops_32(self):
        # Table 3: 32 GFLOPs peak at 1 GHz = 32 ops/cycle.
        assert MachineConfig().peak_flops_per_cycle == 32

    def test_cache_geometry(self):
        cfg = MachineConfig(has_cache=True)
        assert cfg.cache_lines == 128 * 1024 // 8 == 16384
        assert cfg.cache_sets == 16384 // 4 == 4096


class TestValidation:
    def test_default_config_is_valid(self):
        MachineConfig().validate()

    def test_zero_lanes_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(lanes=0).validate()

    def test_uneven_srf_split_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(lanes=7).validate()

    def test_indexed_mode_requires_bandwidth(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(srf_mode=SrfMode.INDEXED).validate()

    def test_indexed_bandwidth_capped_by_subarrays(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(
                srf_mode=SrfMode.INDEXED,
                inlane_indexed_bandwidth=8,
                subarrays_per_bank=4,
            ).validate()

    def test_stream_buffer_must_hold_a_block(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(stream_buffer_words=2).validate()

    def test_cache_set_bank_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(has_cache=True, cache_banks=3).validate()

    def test_replace_validates(self):
        cfg = MachineConfig()
        with pytest.raises(ConfigurationError):
            cfg.replace(lanes=0)

    def test_replace_returns_new_config(self):
        cfg = MachineConfig()
        other = cfg.replace(lanes=4)
        assert other.lanes == 4
        assert cfg.lanes == 8

    def test_config_is_frozen(self):
        cfg = MachineConfig()
        with pytest.raises(Exception):
            cfg.lanes = 4
