"""Configuration knobs added for the §7 extensions and §5.4 ablations."""

import pytest

from repro.config import MachineConfig, isrf4_config
from repro.core import StreamRegisterFile
from repro.errors import ConfigurationError
from repro.interconnect import AddressNetwork, RingAddressNetwork


class TestNetworkKnob:
    def test_default_is_crossbar(self):
        assert isrf4_config().crosslane_network == "crossbar"

    def test_ring_selects_ring_network(self):
        srf = StreamRegisterFile(isrf4_config(crosslane_network="ring"))
        assert isinstance(srf.address_network, RingAddressNetwork)

    def test_crossbar_selects_plain_network(self):
        srf = StreamRegisterFile(isrf4_config())
        assert type(srf.address_network) is AddressNetwork

    def test_unknown_network_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(crosslane_network="torus").validate()


class TestArbitrationKnob:
    def test_default_is_round_robin(self):
        assert isrf4_config().indexed_arbitration == "round_robin"

    def test_occupancy_accepted(self):
        cfg = isrf4_config(indexed_arbitration="occupancy")
        StreamRegisterFile(cfg)  # constructs fine

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(indexed_arbitration="magic").validate()
