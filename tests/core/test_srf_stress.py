"""Randomised SRF stress tests: invariants under arbitrary traffic."""

import random

from hypothesis import given, settings, strategies as st

from repro.config import isrf1_config, isrf4_config
from repro.core import SrfArray, StreamRegisterFile


def drive_random_reads(srf, streams, records, cycles, seed,
                       tables):
    """Issue random reads on every stream/lane; pop eagerly.

    Returns (popped values per stream per lane, expected values)."""
    rng = random.Random(seed)
    lanes = srf.geometry.lanes
    expected = [[[] for _ in range(lanes)] for _ in streams]
    got = [[[] for _ in range(lanes)] for _ in streams]
    for cycle in range(cycles):
        for s, stream in enumerate(streams):
            for lane in range(lanes):
                while stream.data_ready(lane):
                    got[s][lane].append(stream.pop_data(lane))
                if rng.random() < 0.7 and stream.can_issue(lane):
                    record = rng.randrange(records)
                    stream.issue_read(lane, record)
                    expected[s][lane].append(tables[s][record])
        srf.tick(cycle)
    # Drain.
    for cycle in range(cycles, cycles + 64):
        srf.tick(cycle)
        for s, stream in enumerate(streams):
            for lane in range(lanes):
                while stream.data_ready(lane):
                    got[s][lane].append(stream.pop_data(lane))
    return got, expected


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    stream_count=st.integers(min_value=1, max_value=4),
    make_config=st.sampled_from([isrf1_config, isrf4_config]),
)
def test_random_traffic_preserves_values_and_order(seed, stream_count,
                                                   make_config):
    """Every popped word equals the table entry of its issue, in issue
    order, for any random traffic mix on ISRF1 and ISRF4."""
    config = make_config()
    srf = StreamRegisterFile(config)
    records = 64
    tables = []
    streams = []
    for s in range(stream_count):
        arr = SrfArray(srf, records * config.lanes, f"t{s}")
        table = [1000 * s + k for k in range(records)]
        arr.fill_replicated(table)
        tables.append(table)
        streams.append(srf.open_indexed(arr.inlane_read(records)))
    got, expected = drive_random_reads(
        srf, streams, records, cycles=200, seed=seed, tables=tables
    )
    assert got == expected


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_grant_counts_respect_bandwidth_caps(seed):
    """ISRF4 never grants more than min(bandwidth, sub-arrays) in-lane
    words per lane per indexed cycle (checked via aggregate stats)."""
    config = isrf4_config()
    srf = StreamRegisterFile(config)
    records = 64
    tables, streams = [], []
    for s in range(4):
        arr = SrfArray(srf, records * config.lanes, f"t{s}")
        table = list(range(records))
        arr.fill_replicated(table)
        tables.append(table)
        streams.append(srf.open_indexed(arr.inlane_read(records)))
    drive_random_reads(srf, streams, records, cycles=150, seed=seed,
                       tables=tables)
    stats = srf.stats
    cap = config.inlane_indexed_bandwidth * config.lanes
    assert stats.inlane_grants <= stats.indexed_cycles * cap


def test_isrf1_grants_at_most_one_word_per_lane_per_cycle():
    config = isrf1_config()
    srf = StreamRegisterFile(config)
    records = 64
    tables, streams = [], []
    for s in range(4):
        arr = SrfArray(srf, records * config.lanes, f"t{s}")
        table = list(range(records))
        arr.fill_replicated(table)
        tables.append(table)
        streams.append(srf.open_indexed(arr.inlane_read(records)))
    drive_random_reads(srf, streams, records, cycles=150, seed=11,
                       tables=tables)
    stats = srf.stats
    assert stats.inlane_grants <= stats.indexed_cycles * config.lanes


def test_storage_corruption_is_caught_by_verification():
    """Failure injection: flipping a stored word breaks the Rijndael
    ciphertext check — i.e. verification really exercises the data
    path, not a shadow model."""
    from repro.apps.rijndael import RijndaelBenchmark
    from repro.config import isrf4_config as make

    bench = RijndaelBenchmark(make(), blocks_per_lane=2)
    prog = bench.build_program(0)
    bench.proc.run_program(prog)
    assert bench.verify(0)
    region = bench.ct_regions[0]
    original = bench.proc.memory.read(region.base)
    bench.proc.memory.write(region.base, original ^ 0x1)
    assert not bench.verify(0)
