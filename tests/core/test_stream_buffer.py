"""Stream buffers: LaneFifo and the indexed-stream ReorderBuffer."""

import pytest
from hypothesis import given, strategies as st

from repro.core.stream_buffer import LaneFifo, ReorderBuffer
from repro.errors import SrfError


class TestLaneFifo:
    def test_block_fill_then_simd_pops(self):
        fifo = LaneFifo(lanes=2, capacity_words=8)
        fifo.push_block([[1, 2, 3, 4], [5, 6, 7, 8]])
        assert fifo.occupancy == 4
        assert fifo.pop_simd() == [1, 5]
        assert fifo.pop_simd() == [2, 6]
        assert fifo.occupancy == 2

    def test_simd_pushes_then_block_drain(self):
        fifo = LaneFifo(lanes=2, capacity_words=8)
        fifo.push_simd([1, 10])
        fifo.push_simd([2, 20])
        assert fifo.pop_block(2) == [[1, 2], [10, 20]]

    def test_overflow_raises(self):
        fifo = LaneFifo(lanes=1, capacity_words=2)
        fifo.push_simd([1])
        fifo.push_simd([2])
        with pytest.raises(SrfError):
            fifo.push_simd([3])

    def test_underflow_raises(self):
        fifo = LaneFifo(lanes=1, capacity_words=2)
        with pytest.raises(SrfError):
            fifo.pop_simd()

    def test_nonuniform_block_rejected(self):
        fifo = LaneFifo(lanes=2, capacity_words=8)
        with pytest.raises(SrfError):
            fifo.push_block([[1, 2], [3]])

    def test_wrong_lane_count_rejected(self):
        fifo = LaneFifo(lanes=2, capacity_words=8)
        with pytest.raises(SrfError):
            fifo.push_simd([1])

    @given(st.lists(st.integers(), min_size=1, max_size=32))
    def test_fifo_order_preserved(self, values):
        fifo = LaneFifo(lanes=1, capacity_words=len(values))
        for v in values:
            fifo.push_simd([v])
        popped = [fifo.pop_simd()[0] for _ in values]
        assert popped == values


class TestReorderBuffer:
    def test_in_order_fill_and_pop(self):
        rob = ReorderBuffer(4)
        t0, t1 = rob.reserve(), rob.reserve()
        rob.fill(t0, "a")
        rob.fill(t1, "b")
        assert rob.pop() == "a"
        assert rob.pop() == "b"

    def test_out_of_order_fill_blocks_head(self):
        # Figure 9: a younger completed access must not unblock the head.
        rob = ReorderBuffer(4)
        t0 = rob.reserve()
        t1 = rob.reserve()
        rob.fill(t1, "late")
        assert not rob.head_ready()
        with pytest.raises(SrfError):
            rob.pop()
        rob.fill(t0, "early")
        assert rob.head_ready()
        assert rob.pop() == "early"
        assert rob.pop() == "late"

    def test_capacity_enforced(self):
        rob = ReorderBuffer(2)
        rob.reserve()
        rob.reserve()
        assert not rob.can_reserve()
        with pytest.raises(SrfError):
            rob.reserve()

    def test_pop_frees_capacity(self):
        rob = ReorderBuffer(1)
        t = rob.reserve()
        rob.fill(t, 1)
        rob.pop()
        assert rob.can_reserve()

    def test_double_fill_rejected(self):
        rob = ReorderBuffer(2)
        t = rob.reserve()
        rob.fill(t, 1)
        with pytest.raises(SrfError):
            rob.fill(t, 2)

    def test_unknown_ticket_rejected(self):
        rob = ReorderBuffer(2)
        with pytest.raises(SrfError):
            rob.fill(99, 1)

    @given(st.permutations(list(range(6))))
    def test_any_fill_order_pops_in_issue_order(self, fill_order):
        rob = ReorderBuffer(6)
        tickets = [rob.reserve() for _ in range(6)]
        for position in fill_order:
            rob.fill(tickets[position], position)
        assert [rob.pop() for _ in range(6)] == list(range(6))
