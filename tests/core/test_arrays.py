"""SrfArray: layout-aware descriptor factories and data conversions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import base_config, isrf4_config
from repro.core import SrfArray, StreamRegisterFile
from repro.core.descriptors import IndexSpace, StreamKind
from repro.errors import SrfError


def make_srf():
    return StreamRegisterFile(isrf4_config())


class TestDescriptorFactories:
    def test_sequential_views(self):
        srf = make_srf()
        arr = SrfArray(srf, 64, "a")
        read = arr.seq_read()
        write = arr.seq_write(32)
        assert read.kind is StreamKind.SEQUENTIAL_READ
        assert read.base == arr.base and read.length_words == arr.words
        assert write.length_words == 32

    def test_sequential_view_cannot_exceed_allocation(self):
        srf = make_srf()
        arr = SrfArray(srf, 64, "a")
        with pytest.raises(SrfError):
            arr.seq_read(arr.words + 1)

    def test_inlane_views_and_capacity(self):
        srf = make_srf()
        arr = SrfArray(srf, 8 * 16, "t")  # 16 words per lane
        read = arr.inlane_read(8, record_words=2)
        assert read.index_space is IndexSpace.PER_LANE
        assert read.record_words == 2
        with pytest.raises(SrfError):
            arr.inlane_read(9, record_words=2)  # 18 words > 16 per lane

    def test_crosslane_view(self):
        srf = make_srf()
        arr = SrfArray(srf, 128, "n")
        desc = arr.crosslane_read()
        assert desc.index_space is IndexSpace.GLOBAL
        assert desc.length_records == 128
        with pytest.raises(SrfError):
            arr.crosslane_read(200)

    def test_readwrite_view(self):
        srf = make_srf()
        arr = SrfArray(srf, 64, "b")
        assert (arr.inlane_readwrite(8).kind
                is StreamKind.INLANE_INDEXED_READWRITE)

    def test_free_returns_space(self):
        srf = make_srf()
        before = srf.allocator.free_words
        arr = SrfArray(srf, 64, "a")
        arr.free()
        assert srf.allocator.free_words == before


class TestLayoutConversions:
    def test_fill_per_lane_read_back(self):
        srf = make_srf()
        arr = SrfArray(srf, 8 * 8, "t")
        tables = [[lane * 10 + k for k in range(8)] for lane in range(8)]
        arr.fill_per_lane(tables)
        for lane in range(8):
            assert arr.read_per_lane(lane, 8) == tables[lane]

    def test_fill_replicated(self):
        srf = make_srf()
        arr = SrfArray(srf, 8 * 4, "t")
        arr.fill_replicated([9, 8, 7, 6])
        for lane in range(8):
            assert arr.read_per_lane(lane, 4) == [9, 8, 7, 6]

    def test_stream_image_matches_fill_per_lane(self):
        # Loading stream_image_per_lane sequentially must equal writing
        # fill_per_lane directly — the property every app relies on.
        srf = make_srf()
        arr = SrfArray(srf, 8 * 8, "t")
        tables = [[100 * lane + k for k in range(8)] for lane in range(8)]
        image = arr.stream_image_per_lane(tables)
        arr.fill_stream_order(image)
        for lane in range(8):
            assert arr.read_per_lane(lane, 8) == tables[lane]

    @settings(max_examples=30, deadline=None)
    @given(
        words_per_lane=st.integers(min_value=1, max_value=24),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_image_roundtrip_property(self, words_per_lane, seed):
        import random

        rng = random.Random(seed)
        srf = make_srf()
        arr = SrfArray(srf, 8 * 32, f"t{seed}")
        tables = [
            [rng.randrange(1000) for _ in range(words_per_lane)]
            for _ in range(8)
        ]
        image = arr.stream_image_per_lane(tables)
        back = arr.per_lane_from_stream_image(image, words_per_lane)
        assert back == tables

    def test_wrong_lane_count_rejected(self):
        srf = make_srf()
        arr = SrfArray(srf, 64, "t")
        with pytest.raises(SrfError):
            arr.fill_per_lane([[1]] * 3)
        with pytest.raises(SrfError):
            arr.stream_image_per_lane([[1]] * 3)

    def test_overfull_lane_rejected(self):
        srf = make_srf()
        arr = SrfArray(srf, 8 * 4, "t")
        with pytest.raises(SrfError):
            arr.fill_per_lane([[0] * 5] * 8)

    def test_works_on_sequential_only_machines_too(self):
        srf = StreamRegisterFile(base_config())
        arr = SrfArray(srf, 64, "t")
        arr.fill_stream_order(list(range(64)))
        assert arr.read_stream_order(4) == [0, 1, 2, 3]
