"""SRF backing storage and the block-aligned allocator."""

import pytest
from hypothesis import given, strategies as st

from repro.core.geometry import SrfGeometry
from repro.core.storage import SrfAllocator, SrfStorage
from repro.errors import SrfAccessError, SrfAllocationError


def small_geometry() -> SrfGeometry:
    return SrfGeometry(
        lanes=4, bank_words=64, words_per_lane_access=4, subarrays_per_bank=4
    )


class TestAllocator:
    def test_allocations_are_block_aligned_and_rounded(self):
        alloc = SrfAllocator(small_geometry())
        a = alloc.allocate(10, "a")
        assert a.base == 0
        assert a.words == 16  # rounded to one 4x4 block

    def test_sequential_allocations_do_not_overlap(self):
        alloc = SrfAllocator(small_geometry())
        a = alloc.allocate(16, "a")
        b = alloc.allocate(20, "b")
        assert b.base >= a.end
        assert b.words == 32

    def test_free_makes_space_reusable_first_fit(self):
        alloc = SrfAllocator(small_geometry())
        a = alloc.allocate(16, "a")
        alloc.allocate(16, "b")
        alloc.free(a)
        c = alloc.allocate(16, "c")
        assert c.base == 0  # reuses the hole

    def test_capacity_exhaustion_raises(self):
        alloc = SrfAllocator(small_geometry())
        alloc.allocate(small_geometry().total_words, "all")
        with pytest.raises(SrfAllocationError):
            alloc.allocate(1, "more")

    def test_double_free_raises(self):
        alloc = SrfAllocator(small_geometry())
        a = alloc.allocate(16, "a")
        alloc.free(a)
        with pytest.raises(SrfAllocationError):
            alloc.free(a)

    def test_nonpositive_allocation_raises(self):
        alloc = SrfAllocator(small_geometry())
        with pytest.raises(SrfAllocationError):
            alloc.allocate(0)

    def test_reset_frees_everything(self):
        alloc = SrfAllocator(small_geometry())
        alloc.allocate(64)
        alloc.reset()
        assert alloc.free_words == small_geometry().total_words

    @given(sizes=st.lists(st.integers(min_value=1, max_value=40), max_size=12))
    def test_allocations_never_overlap_property(self, sizes):
        geometry = small_geometry()
        alloc = SrfAllocator(geometry)
        regions = []
        for size in sizes:
            try:
                regions.append(alloc.allocate(size))
            except SrfAllocationError:
                break
        spans = sorted((r.base, r.end) for r in regions)
        for (_, prev_end), (base, _) in zip(spans, spans[1:]):
            assert base >= prev_end
        for base, end in spans:
            assert 0 <= base < end <= geometry.total_words


class TestStorage:
    def test_read_write_roundtrip_global(self):
        store = SrfStorage(small_geometry())
        store.write(5, 1.25)
        assert store.read(5) == 1.25

    def test_lane_addressing_aliases_global(self):
        g = small_geometry()
        store = SrfStorage(g)
        store.write_lane(2, 7, "x")
        assert store.read(g.join(2, 7)) == "x"
        assert store.read_lane(2, 7) == "x"

    def test_range_roundtrip(self):
        store = SrfStorage(small_geometry())
        store.write_range(8, [1, 2, 3])
        assert store.read_range(8, 3) == [1, 2, 3]

    def test_out_of_range_rejected(self):
        store = SrfStorage(small_geometry())
        with pytest.raises(SrfAccessError):
            store.read(small_geometry().total_words)
        with pytest.raises(SrfAccessError):
            store.write(-1, 0)

    def test_empty_range_ok(self):
        store = SrfStorage(small_geometry())
        assert store.read_range(0, 0) == []
        store.write_range(0, [])
