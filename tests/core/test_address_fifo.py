"""Address FIFOs: record->word expansion and head-of-line order."""

import pytest

from repro.core.address_fifo import AddressFifo, RecordAccess
from repro.errors import SrfError


def read_record(words, tickets):
    return RecordAccess(words=words, tickets=tickets)


class TestRecordAccess:
    def test_read_xor_write_payload(self):
        with pytest.raises(SrfError):
            RecordAccess(words=[(0, 0)])
        with pytest.raises(SrfError):
            RecordAccess(words=[(0, 0)], tickets=[1], values=[2])

    def test_payload_length_must_match(self):
        with pytest.raises(SrfError):
            RecordAccess(words=[(0, 0), (0, 1)], tickets=[1])


class TestAddressFifo:
    def test_single_word_records(self):
        fifo = AddressFifo(capacity_entries=2, stream_id=7, lane=3)
        fifo.push(read_record([(3, 10)], [0]))
        word = fifo.peek_word()
        assert word.bank_local_addr == 10
        assert word.target_lane == 3
        assert word.source_lane == 3
        assert word.stream_id == 7
        assert word.ticket == 0
        assert word.is_read
        fifo.advance()
        assert fifo.is_empty

    def test_record_expands_to_word_sequence(self):
        # Head counters break a 3-word record into 3 single-word accesses
        # (paper Section 4.4).
        fifo = AddressFifo(capacity_entries=2, stream_id=0, lane=0)
        fifo.push(read_record([(0, 4), (0, 5), (1, 6)], [10, 11, 12]))
        seen = []
        while not fifo.is_empty:
            w = fifo.peek_word()
            seen.append((w.target_lane, w.bank_local_addr, w.ticket))
            fifo.advance()
        assert seen == [(0, 4, 10), (0, 5, 11), (1, 6, 12)]

    def test_capacity_counts_records_not_words(self):
        fifo = AddressFifo(capacity_entries=2, stream_id=0, lane=0)
        fifo.push(read_record([(0, 0), (0, 1)], [0, 1]))
        fifo.push(read_record([(0, 2), (0, 3)], [2, 3]))
        assert fifo.is_full
        with pytest.raises(SrfError):
            fifo.push(read_record([(0, 4)], [4]))

    def test_head_of_line_order_preserved(self):
        fifo = AddressFifo(capacity_entries=4, stream_id=0, lane=0)
        fifo.push(read_record([(0, 1)], [0]))
        fifo.push(read_record([(0, 2)], [1]))
        assert fifo.peek_word().bank_local_addr == 1
        # Peeking repeatedly without advance returns the same head.
        assert fifo.peek_word().bank_local_addr == 1
        fifo.advance()
        assert fifo.peek_word().bank_local_addr == 2

    def test_write_records_carry_values(self):
        fifo = AddressFifo(capacity_entries=2, stream_id=0, lane=0)
        fifo.push(RecordAccess(words=[(0, 8), (0, 9)], values=["a", "b"]))
        w = fifo.peek_word()
        assert not w.is_read
        assert w.value == "a"
        fifo.advance()
        assert fifo.peek_word().value == "b"

    def test_advance_on_empty_raises(self):
        fifo = AddressFifo(capacity_entries=1, stream_id=0, lane=0)
        with pytest.raises(SrfError):
            fifo.advance()

    def test_peek_on_empty_returns_none(self):
        fifo = AddressFifo(capacity_entries=1, stream_id=0, lane=0)
        assert fifo.peek_word() is None
