"""SRF geometry: global <-> bank-local mapping and sub-array interleave."""

import pytest
from hypothesis import given, strategies as st

from repro.core.geometry import SrfGeometry
from repro.errors import SrfAccessError


def paper_geometry() -> SrfGeometry:
    """128 KB SRF: N=8 lanes, m=4, s=4 (paper Figure 6)."""
    return SrfGeometry(
        lanes=8, bank_words=4096, words_per_lane_access=4, subarrays_per_bank=4
    )


class TestBasicMapping:
    def test_total_and_block_words(self):
        g = paper_geometry()
        assert g.total_words == 32768
        assert g.block_words == 32
        assert g.subarray_words == 1024

    def test_first_block_is_striped_m_words_per_lane(self):
        g = paper_geometry()
        # Words 0..3 in lane 0, words 4..7 in lane 1, etc.
        assert g.split(0) == (0, 0)
        assert g.split(3) == (0, 3)
        assert g.split(4) == (1, 0)
        assert g.split(31) == (7, 3)

    def test_second_block_continues_in_each_bank(self):
        g = paper_geometry()
        assert g.split(32) == (0, 4)
        assert g.split(36) == (1, 4)

    def test_sequential_block_stays_in_one_subarray(self):
        # The m consecutive words a lane reads in one sequential access
        # must live in a single sub-array (Section 4.2).
        g = paper_geometry()
        for block in range(16):
            local_base = block * g.words_per_lane_access
            subs = {g.subarray_of(local_base + j) for j in range(4)}
            assert len(subs) == 1

    def test_consecutive_blocks_rotate_subarrays(self):
        g = paper_geometry()
        subs = [g.subarray_of(block * 4) for block in range(8)]
        assert subs == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_out_of_range_rejected(self):
        g = paper_geometry()
        with pytest.raises(SrfAccessError):
            g.split(g.total_words)
        with pytest.raises(SrfAccessError):
            g.join(8, 0)
        with pytest.raises(SrfAccessError):
            g.join(0, g.bank_words)

    def test_blocks_spanned(self):
        g = paper_geometry()
        assert g.blocks_spanned(0, 1) == 1
        assert g.blocks_spanned(0, 32) == 1
        assert g.blocks_spanned(0, 33) == 2
        assert g.blocks_spanned(32, 64) == 2
        assert g.blocks_spanned(0, 0) == 0


@given(
    lanes=st.sampled_from([1, 2, 4, 8, 16]),
    m=st.sampled_from([1, 2, 4, 8]),
    s=st.sampled_from([1, 2, 4, 8]),
    blocks=st.integers(min_value=1, max_value=64),
    data=st.data(),
)
def test_split_join_roundtrip(lanes, m, s, blocks, data):
    """split/join are inverse bijections over the whole address space."""
    bank_words = blocks * m * s
    g = SrfGeometry(
        lanes=lanes,
        bank_words=bank_words,
        words_per_lane_access=m,
        subarrays_per_bank=s,
    )
    addr = data.draw(st.integers(min_value=0, max_value=g.total_words - 1))
    lane, local = g.split(addr)
    assert 0 <= lane < lanes
    assert 0 <= local < bank_words
    assert g.join(lane, local) == addr


@given(
    m=st.sampled_from([1, 2, 4]),
    s=st.sampled_from([1, 2, 4, 8]),
    data=st.data(),
)
def test_subarray_always_in_range(m, s, data):
    g = SrfGeometry(
        lanes=4, bank_words=16 * m * s, words_per_lane_access=m,
        subarrays_per_bank=s,
    )
    local = data.draw(st.integers(min_value=0, max_value=g.bank_words - 1))
    assert 0 <= g.subarray_of(local) < s
