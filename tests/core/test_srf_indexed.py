"""Indexed SRF access: in-lane, cross-lane, conflicts, ISRF1 vs ISRF4."""

import pytest

from repro.config import isrf1_config, isrf4_config
from repro.core.descriptors import StreamDescriptor, StreamKind
from repro.core.srf import StreamRegisterFile
from repro.errors import SrfError


def make_isrf4(**overrides):
    return StreamRegisterFile(isrf4_config(**overrides))


def make_isrf1(**overrides):
    return StreamRegisterFile(isrf1_config(**overrides))


def inlane_table(srf, records=64, name="lut"):
    """Allocate a per-lane table and fill each bank with lane*1000+i."""
    desc_words = records * srf.geometry.lanes
    region = srf.allocator.allocate(desc_words, name)
    desc = StreamDescriptor(
        name, StreamKind.INLANE_INDEXED_READ, region.base,
        length_records=records,
    )
    stream = srf.open_indexed(desc)
    local_base = (region.base // srf.geometry.block_words) * \
        srf.geometry.words_per_lane_access
    for lane in range(srf.geometry.lanes):
        for i in range(records):
            srf.storage.write_lane(lane, local_base + i, lane * 1000 + i)
    return stream


def drain_until_ready(srf, stream, lane, limit=32, start=0):
    cycle = start
    while not stream.data_ready(lane):
        if cycle - start > limit:
            raise AssertionError("data never became ready")
        srf.tick(cycle)
        cycle += 1
    return cycle


class TestInLaneIndexedRead:
    def test_lookup_returns_lane_local_value(self):
        srf = make_isrf4()
        stream = inlane_table(srf)
        stream.issue_read(lane=3, record_index=17)
        drain_until_ready(srf, stream, lane=3)
        assert stream.pop_data(3) == 3017

    def test_latency_is_pipelined_four_cycles(self):
        srf = make_isrf4()
        stream = inlane_table(srf)
        stream.issue_read(lane=0, record_index=0)
        # Grant at cycle 0, data ready after completing cycle 4's tick.
        for cycle in range(4):
            srf.tick(cycle)
            assert not stream.data_ready(0)
        srf.tick(4)
        assert stream.data_ready(0)

    def test_one_access_per_stream_per_cycle(self):
        # Section 5.3: "our current implementation limits each indexed
        # stream to issuing a single indexed SRF access per cycle", so two
        # accesses of the SAME stream serialize even across sub-arrays.
        srf = make_isrf4()
        stream = inlane_table(srf)
        stream.issue_read(0, 0)
        stream.issue_read(0, 4)  # different sub-array, same stream
        for cycle in range(5):
            srf.tick(cycle)
        assert stream.data_ready(0)
        assert stream.pop_data(0) == 0
        assert not stream.data_ready(0)
        srf.tick(5)
        assert stream.pop_data(0) == 4

    def test_distinct_streams_and_subarrays_proceed_in_parallel(self):
        # ISRF4's extra bandwidth shows up with multiple indexed streams
        # hitting distinct sub-arrays (Rijndael and Filter in the paper).
        srf = make_isrf4()
        a = inlane_table(srf, name="lut_a")
        b = inlane_table(srf, name="lut_b")
        a.issue_read(0, 0)
        b.issue_read(0, 4)  # different stream and different sub-array
        for cycle in range(5):
            srf.tick(cycle)
        assert a.data_ready(0) and b.data_ready(0)
        assert srf.stats.indexed_cycles == 1

    def test_distinct_streams_same_subarray_serialize_on_isrf4(self):
        srf = make_isrf4()
        a = inlane_table(srf, name="lut_a")
        b = inlane_table(srf, name="lut_b")
        a.issue_read(0, 0)
        b.issue_read(0, 0)  # same sub-array of the same bank
        for cycle in range(5):
            srf.tick(cycle)
        ready = [a.data_ready(0), b.data_ready(0)]
        assert sorted(ready) == [False, True]
        srf.tick(5)
        assert a.data_ready(0) and b.data_ready(0)

    def test_same_subarray_serializes(self):
        srf = make_isrf4()
        stream = inlane_table(srf)
        # Records 0 and 1 share a sub-array: second access waits a cycle.
        stream.issue_read(0, 0)
        stream.issue_read(0, 1)
        for cycle in range(5):
            srf.tick(cycle)
        assert stream.data_ready(0)
        assert stream.pop_data(0) == 0
        assert not stream.data_ready(0)
        srf.tick(5)
        assert stream.data_ready(0)
        assert stream.pop_data(0) == 1

    def test_isrf1_grants_one_word_per_lane_per_cycle(self):
        srf = make_isrf1()
        stream = inlane_table(srf)
        stream.issue_read(0, 0)
        stream.issue_read(0, 4)  # different sub-arrays, still serialized
        for cycle in range(5):
            srf.tick(cycle)
        assert stream.pop_data(0) == 0
        assert not stream.data_ready(0)
        srf.tick(5)
        assert stream.pop_data(0) == 4

    def test_lanes_are_independent(self):
        srf = make_isrf4()
        stream = inlane_table(srf)
        for lane in range(8):
            stream.issue_read(lane, lane)
        for cycle in range(5):
            srf.tick(cycle)
        for lane in range(8):
            assert stream.pop_data(lane) == lane * 1000 + lane
        assert srf.stats.inlane_grants == 8
        assert srf.stats.indexed_cycles == 1

    def test_issue_backpressure_via_can_issue(self):
        srf = make_isrf4(address_fifo_words=2, stream_buffer_words=4)
        stream = inlane_table(srf)
        issued = 0
        while stream.can_issue(0):
            stream.issue_read(0, issued)
            issued += 1
        assert issued == 2  # FIFO capacity limits first
        with pytest.raises(SrfError):
            stream.issue_read(0, 0)

    def test_rob_capacity_limits_issue(self):
        srf = make_isrf4(address_fifo_words=8, stream_buffer_words=4)
        stream = inlane_table(srf)
        count = 0
        while stream.can_issue(0):
            stream.issue_read(0, count)
            count += 1
        assert count == 4  # reorder buffer slots limit


class TestInLaneIndexedWrite:
    def test_write_lands_and_drains(self):
        srf = make_isrf4()
        records = 64
        region = srf.allocator.allocate(records * 8, "wtab")
        desc = StreamDescriptor(
            "wtab", StreamKind.INLANE_INDEXED_WRITE, region.base,
            length_records=records,
        )
        stream = srf.open_indexed(desc)
        stream.issue_write(2, 5, [42])
        assert stream.outstanding_writes == 1
        for cycle in range(6):
            srf.tick(cycle)
        assert stream.outstanding_writes == 0
        assert stream.quiescent
        local_base = (region.base // srf.geometry.block_words) * 4
        assert srf.storage.read_lane(2, local_base + 5) == 42

    def test_read_api_rejected_on_write_stream(self):
        srf = make_isrf4()
        region = srf.allocator.allocate(64, "wtab")
        desc = StreamDescriptor(
            "wtab", StreamKind.INLANE_INDEXED_WRITE, region.base,
            length_records=8,
        )
        stream = srf.open_indexed(desc)
        with pytest.raises(SrfError):
            stream.issue_read(0, 0)
        with pytest.raises(SrfError):
            stream.pop_data(0)


class TestCrossLaneIndexedRead:
    def test_any_lane_reads_any_record(self):
        srf = make_isrf4()
        records = 256
        region = srf.allocator.allocate(records, "nodes")
        srf.storage.write_range(
            region.base, [10 * i for i in range(records)]
        )
        from repro.core.descriptors import IndexSpace
        desc = StreamDescriptor(
            "nodes", StreamKind.CROSSLANE_INDEXED_READ, region.base,
            length_records=records, index_space=IndexSpace.GLOBAL,
        )
        stream = srf.open_indexed(desc)
        # Record 37 lives in lane (37 // 4) % 8 = 1; read it from lane 6.
        stream.issue_read(6, 37)
        for cycle in range(8):
            srf.tick(cycle)
        assert stream.data_ready(6)
        assert stream.pop_data(6) == 370
        assert srf.stats.crosslane_grants == 1

    def test_bank_port_limit_serializes_same_bank_targets(self):
        srf = make_isrf4()  # 1 cross-lane port per bank
        from repro.core.descriptors import IndexSpace
        records = 256
        region = srf.allocator.allocate(records, "nodes")
        srf.storage.write_range(region.base, list(range(records)))
        desc = StreamDescriptor(
            "nodes", StreamKind.CROSSLANE_INDEXED_READ, region.base,
            length_records=records, index_space=IndexSpace.GLOBAL,
        )
        stream = srf.open_indexed(desc)
        # Records 0 and 1 both live in bank 0; issue from two lanes.
        stream.issue_read(4, 0)
        stream.issue_read(5, 1)
        for cycle in range(16):
            srf.tick(cycle)
        assert stream.pop_data(4) == 0
        assert stream.pop_data(5) == 1
        # Only one port: the two accesses cannot be granted the same cycle.
        assert srf.stats.crosslane_grants == 2
        assert srf.stats.blocked_heads >= 1

    def test_two_ports_allow_parallel_same_bank_access(self):
        srf = StreamRegisterFile(isrf4_config(crosslane_ports_per_bank=2))
        from repro.core.descriptors import IndexSpace
        records = 256
        region = srf.allocator.allocate(records, "nodes")
        srf.storage.write_range(region.base, list(range(records)))
        desc = StreamDescriptor(
            "nodes", StreamKind.CROSSLANE_INDEXED_READ, region.base,
            length_records=records, index_space=IndexSpace.GLOBAL,
        )
        stream = srf.open_indexed(desc)
        stream.issue_read(4, 0)
        stream.issue_read(5, 4)  # same bank 0... record 4 -> bank 1
        stream.issue_read(6, 1)  # bank 0 again
        srf.tick(0)
        # bank 0 received two requests (records 0 and 1) and can grant both
        # only with 2 ports and distinct sub-arrays; records 0 and 1 share
        # a sub-array though, so exactly one is granted plus record 4.
        assert srf.stats.crosslane_grants >= 2
