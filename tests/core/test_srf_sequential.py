"""Sequential SRF access through stream buffers (paper Section 4.3)."""

import pytest

from repro.config import base_config, isrf4_config
from repro.core.descriptors import StreamDescriptor, StreamKind
from repro.core.srf import StreamRegisterFile
from repro.errors import SrfError


def make_srf():
    return StreamRegisterFile(base_config())


def run_cycles(srf, start, count):
    for cycle in range(start, start + count):
        srf.tick(cycle)
    return start + count


class TestSequentialRead:
    def test_block_arrives_after_pipeline_latency(self):
        srf = make_srf()
        region = srf.allocator.allocate(32, "in")
        srf.storage.write_range(region.base, list(range(32)))
        desc = StreamDescriptor(
            "in", StreamKind.SEQUENTIAL_READ, region.base, length_records=32
        )
        port = srf.open_sequential(desc)
        assert not port.can_pop()
        srf.tick(0)  # grant cycle
        assert not port.can_pop()  # latency is 3 cycles
        run_cycles(srf, 1, 3)
        assert port.can_pop()
        # Block striping: lane l's first word is global word l*m.
        assert port.pop_simd() == [0, 4, 8, 12, 16, 20, 24, 28]
        assert port.pop_simd() == [1, 5, 9, 13, 17, 21, 25, 29]

    def test_whole_stream_transfers_in_order(self):
        srf = make_srf()
        words = 96  # three blocks
        region = srf.allocator.allocate(words, "in")
        srf.storage.write_range(region.base, list(range(words)))
        desc = StreamDescriptor(
            "in", StreamKind.SEQUENTIAL_READ, region.base, length_records=words
        )
        port = srf.open_sequential(desc)
        lane0 = []
        for cycle in range(60):
            srf.tick(cycle)
            while port.can_pop():
                lane0.append(port.pop_simd()[0])
        # Lane 0 sees words 0..3 of every block, i.e. 0..3, 32..35, 64..67.
        assert lane0 == [0, 1, 2, 3, 32, 33, 34, 35, 64, 65, 66, 67]
        assert port.drained

    def test_stats_count_words(self):
        srf = make_srf()
        region = srf.allocator.allocate(64, "in")
        desc = StreamDescriptor(
            "in", StreamKind.SEQUENTIAL_READ, region.base, length_records=64
        )
        port = srf.open_sequential(desc)
        for cycle in range(20):
            srf.tick(cycle)
            while port.can_pop():
                port.pop_simd()
        assert srf.stats.sequential_words == 64
        assert srf.stats.sequential_grants == 2


class TestSequentialWrite:
    def test_written_data_lands_in_storage(self):
        srf = make_srf()
        region = srf.allocator.allocate(32, "out")
        desc = StreamDescriptor(
            "out", StreamKind.SEQUENTIAL_WRITE, region.base, length_records=32
        )
        port = srf.open_sequential(desc)
        # Push m=4 words per lane: one full block.
        for i in range(4):
            port.push_simd([100 * lane + i for lane in range(8)])
        srf.tick(0)
        # Lane 2's words occupy global addresses base+8..base+11.
        assert srf.storage.read_range(region.base + 8, 4) == [
            200, 201, 202, 203,
        ]
        assert port.drained

    def test_partial_final_block_needs_flush(self):
        srf = make_srf()
        region = srf.allocator.allocate(32, "out")
        desc = StreamDescriptor(
            "out", StreamKind.SEQUENTIAL_WRITE, region.base, length_records=16
        )
        port = srf.open_sequential(desc)
        port.push_simd(list(range(8)))
        port.push_simd(list(range(8)))
        srf.tick(0)
        assert not port.drained  # only 2 words/lane buffered, no flush yet
        port.flush()
        srf.tick(1)
        assert port.drained
        assert srf.storage.read_range(region.base, 2) == [0, 0]
        assert srf.storage.read_range(region.base + 4, 2) == [1, 1]

    def test_push_beyond_capacity_raises(self):
        srf = make_srf()
        region = srf.allocator.allocate(320, "out")
        desc = StreamDescriptor(
            "out", StreamKind.SEQUENTIAL_WRITE, region.base, length_records=320
        )
        port = srf.open_sequential(desc)
        for i in range(8):  # fill the 8-word buffer without ticking
            port.push_simd([i] * 8)
        with pytest.raises(SrfError):
            port.push_simd([9] * 8)


class TestPortArbitration:
    def test_single_port_per_cycle(self):
        # Two ready read ports: only one block moves per cycle.
        srf = make_srf()
        r1 = srf.allocator.allocate(32, "a")
        r2 = srf.allocator.allocate(32, "b")
        p1 = srf.open_sequential(StreamDescriptor(
            "a", StreamKind.SEQUENTIAL_READ, r1.base, 32))
        p2 = srf.open_sequential(StreamDescriptor(
            "b", StreamKind.SEQUENTIAL_READ, r2.base, 32))
        srf.tick(0)
        assert srf.stats.sequential_grants == 1
        srf.tick(1)
        assert srf.stats.sequential_grants == 2
        run_cycles(srf, 2, 4)
        assert p1.can_pop() and p2.can_pop()

    def test_round_robin_is_fair_across_ports(self):
        srf = make_srf()
        regions = [srf.allocator.allocate(128, f"s{i}") for i in range(3)]
        ports = [
            srf.open_sequential(StreamDescriptor(
                f"s{i}", StreamKind.SEQUENTIAL_READ, r.base, 128))
            for i, r in enumerate(regions)
        ]
        for cycle in range(40):
            srf.tick(cycle)
            for port in ports:
                while port.can_pop():
                    port.pop_simd()
        assert all(port.drained for port in ports)

    def test_idle_when_nothing_pending(self):
        srf = make_srf()
        assert srf.idle
        region = srf.allocator.allocate(32, "a")
        port = srf.open_sequential(StreamDescriptor(
            "a", StreamKind.SEQUENTIAL_READ, region.base, 32))
        assert not srf.idle
        for cycle in range(10):
            srf.tick(cycle)
            while port.can_pop():
                port.pop_simd()
        assert srf.idle


class TestIndexedRejection:
    def test_sequential_only_machine_rejects_indexed_streams(self):
        srf = make_srf()
        desc = StreamDescriptor(
            "t", StreamKind.INLANE_INDEXED_READ, 0, length_records=8
        )
        with pytest.raises(SrfError):
            srf.open_indexed(desc)

    def test_indexed_machine_accepts(self):
        srf = StreamRegisterFile(isrf4_config())
        desc = StreamDescriptor(
            "t", StreamKind.INLANE_INDEXED_READ, 0, length_records=8
        )
        srf.open_indexed(desc)
