"""Stream descriptors and the Table 1 stream-type taxonomy."""

import pytest

from repro.core.descriptors import IndexSpace, StreamDescriptor, StreamKind
from repro.errors import SrfError


class TestStreamKindTaxonomy:
    def test_table1_type_names(self):
        # Table 1 of the paper names the KernelC stream types.
        assert StreamKind.SEQUENTIAL_READ.value == "istream"
        assert StreamKind.SEQUENTIAL_WRITE.value == "ostream"
        assert StreamKind.INLANE_INDEXED_READ.value == "idxl_istream"
        assert StreamKind.INLANE_INDEXED_WRITE.value == "idxl_ostream"
        assert StreamKind.CROSSLANE_INDEXED_READ.value == "idx_istream"

    def test_sequential_vs_indexed_partition(self):
        sequential = {k for k in StreamKind if k.is_sequential}
        indexed = {k for k in StreamKind if k.is_indexed}
        assert sequential | indexed == set(StreamKind)
        assert not sequential & indexed

    def test_read_write_partition(self):
        assert StreamKind.SEQUENTIAL_READ.is_read
        assert StreamKind.INLANE_INDEXED_WRITE.is_write
        assert StreamKind.CROSSLANE_INDEXED_READ.is_read

    def test_only_crosslane_read_is_crosslane(self):
        crosslane = [k for k in StreamKind if k.is_crosslane]
        assert crosslane == [StreamKind.CROSSLANE_INDEXED_READ]


class TestStreamDescriptor:
    def test_length_words(self):
        d = StreamDescriptor(
            "s", StreamKind.SEQUENTIAL_READ, base=0,
            length_records=10, record_words=3,
        )
        assert d.length_words == 30

    def test_crosslane_requires_global_index_space(self):
        with pytest.raises(SrfError):
            StreamDescriptor(
                "s", StreamKind.CROSSLANE_INDEXED_READ, base=0,
                length_records=4, index_space=IndexSpace.PER_LANE,
            )

    def test_inlane_requires_per_lane_index_space(self):
        with pytest.raises(SrfError):
            StreamDescriptor(
                "s", StreamKind.INLANE_INDEXED_READ, base=0,
                length_records=4, index_space=IndexSpace.GLOBAL,
            )

    def test_negative_parameters_rejected(self):
        with pytest.raises(SrfError):
            StreamDescriptor("s", StreamKind.SEQUENTIAL_READ, base=-1,
                             length_records=1)
        with pytest.raises(SrfError):
            StreamDescriptor("s", StreamKind.SEQUENTIAL_READ, base=0,
                             length_records=-1)
        with pytest.raises(SrfError):
            StreamDescriptor("s", StreamKind.SEQUENTIAL_READ, base=0,
                             length_records=1, record_words=0)

    def test_with_kind_rebinds_discipline_over_same_data(self):
        written = StreamDescriptor(
            "data", StreamKind.SEQUENTIAL_WRITE, base=32,
            length_records=16, record_words=2,
        )
        reread = written.with_kind(StreamKind.INLANE_INDEXED_READ)
        assert reread.base == written.base
        assert reread.length_records == written.length_records
        assert reread.index_space is IndexSpace.PER_LANE
        crosslane = written.with_kind(StreamKind.CROSSLANE_INDEXED_READ)
        assert crosslane.index_space is IndexSpace.GLOBAL

    def test_stream_ids_unique(self):
        a = StreamDescriptor("a", StreamKind.SEQUENTIAL_READ, 0, 1)
        b = StreamDescriptor("b", StreamKind.SEQUENTIAL_READ, 0, 1)
        assert a.stream_id != b.stream_id
