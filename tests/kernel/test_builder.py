"""KernelBuilder DSL and IR validation."""

import pytest

from repro.core.descriptors import StreamKind
from repro.errors import KernelBuildError
from repro.kernel import KernelBuilder, OpKind


class TestStreamDeclarations:
    def test_all_table1_stream_types(self):
        b = KernelBuilder("k")
        assert b.istream("a").kind is StreamKind.SEQUENTIAL_READ
        assert b.ostream("b").kind is StreamKind.SEQUENTIAL_WRITE
        assert b.idxl_istream("c").kind is StreamKind.INLANE_INDEXED_READ
        assert b.idxl_ostream("d").kind is StreamKind.INLANE_INDEXED_WRITE
        assert b.idx_istream("e").kind is StreamKind.CROSSLANE_INDEXED_READ

    def test_duplicate_stream_name_rejected(self):
        b = KernelBuilder("k")
        b.istream("a")
        with pytest.raises(KernelBuildError):
            b.ostream("a")

    def test_record_words_positive(self):
        b = KernelBuilder("k")
        with pytest.raises(KernelBuildError):
            b.istream("a", record_words=0)


class TestGraphConstruction:
    def test_figure10_lookup_kernel_shape(self):
        b = KernelBuilder("lookup")
        in_s = b.istream("in")
        lut = b.idxl_istream("LUT")
        out = b.ostream("out")
        a = b.read(in_s)
        v = b.idx_read(lut, a)
        c = b.arith(lambda x, y: x + y, a, v)
        b.write(out, c)
        k = b.build()
        kinds = [op.kind for op in k.ops]
        assert kinds == [
            OpKind.SEQ_READ, OpKind.IDX_ISSUE, OpKind.IDX_DATA,
            OpKind.ARITH, OpKind.SEQ_WRITE,
        ]

    def test_read_requires_sequential_input(self):
        b = KernelBuilder("k")
        out = b.ostream("o")
        with pytest.raises(KernelBuildError):
            b.read(out)

    def test_idx_read_requires_indexed_input(self):
        b = KernelBuilder("k")
        in_s = b.istream("i")
        with pytest.raises(KernelBuildError):
            b.idx_read(in_s, b.const(0))

    def test_idx_write_requires_inlane_output(self):
        b = KernelBuilder("k")
        lut = b.idxl_istream("t")
        with pytest.raises(KernelBuildError):
            b.idx_write(lut, b.const(0), b.const(1))

    def test_crosslane_write_unsupported_as_in_paper(self):
        # Section 4.7: no cross-lane indexed write streams.
        b = KernelBuilder("k")
        nodes = b.idx_istream("n")
        with pytest.raises(KernelBuildError):
            b.idx_write(nodes, b.const(0), b.const(1))

    def test_carry_must_be_updated(self):
        b = KernelBuilder("k")
        out = b.ostream("o")
        c = b.carry(0, "acc")
        b.write(out, c)
        with pytest.raises(KernelBuildError):
            b.build()

    def test_carry_double_update_rejected(self):
        b = KernelBuilder("k")
        c = b.carry(0, "acc")
        one = b.const(1)
        nxt = b.add(c, one)
        b.update(c, nxt)
        with pytest.raises(KernelBuildError):
            b.update(c, nxt)

    def test_update_requires_carry_read(self):
        b = KernelBuilder("k")
        x = b.const(1)
        with pytest.raises(KernelBuildError):
            b.update(x, x)

    def test_build_twice_rejected(self):
        b = KernelBuilder("k")
        b.const(1)
        b.build()
        with pytest.raises(KernelBuildError):
            b.build()
        with pytest.raises(KernelBuildError):
            b.const(2)

    def test_mac_chain_builds_mul_add_tree(self):
        b = KernelBuilder("k")
        xs = [b.const(i) for i in range(3)]
        ws = [b.const(i * 10) for i in range(3)]
        acc = b.mac_chain(zip(xs, ws))
        k = b.build()
        muls = [op for op in k.ops if op.kind is OpKind.MUL]
        assert len(muls) == 3
        assert acc in k.ops

    def test_mac_chain_empty_rejected(self):
        b = KernelBuilder("k")
        with pytest.raises(KernelBuildError):
            b.mac_chain([])


class TestDependenceEdges:
    def test_separation_applied_to_issue_data_edge(self):
        b = KernelBuilder("k")
        lut = b.idxl_istream("t")
        out = b.ostream("o")
        v = b.idx_read(lut, b.const(0))
        b.write(out, v)
        k = b.build()
        edges = k.dependence_edges(inlane_separation=9,
                                   crosslane_separation=21)
        issue_data = [
            e for e in edges
            if e.source.kind is OpKind.IDX_ISSUE
            and e.sink.kind is OpKind.IDX_DATA
        ]
        assert len(issue_data) == 1
        assert issue_data[0].latency == 9

    def test_crosslane_separation_used_for_crosslane_streams(self):
        b = KernelBuilder("k")
        nodes = b.idx_istream("n")
        out = b.ostream("o")
        v = b.idx_read(nodes, b.const(0))
        b.write(out, v)
        k = b.build()
        edges = k.dependence_edges(inlane_separation=6,
                                   crosslane_separation=21)
        issue_data = [
            e for e in edges if e.sink.kind is OpKind.IDX_DATA
        ]
        assert issue_data[0].latency == 21

    def test_carry_produces_distance_one_back_edge(self):
        b = KernelBuilder("k")
        out = b.ostream("o")
        c = b.carry(0, "acc")
        nxt = b.add(c, b.const(1))
        b.update(c, nxt)
        b.write(out, nxt)
        k = b.build()
        edges = k.dependence_edges(6, 20)
        back = [e for e in edges if e.distance == 1]
        assert back
        assert all(e.source is nxt for e in back)
