"""ListContext: the standalone execution context."""

import pytest

from repro.errors import ExecutionError
from repro.kernel import KernelBuilder
from repro.kernel.contexts import ListContext


def streams():
    b = KernelBuilder("k")
    return (b, b.istream("i"), b.idxl_istream("t"),
            b.idx_istream("g"), b.ostream("o"))


class TestBinding:
    def test_input_lane_count_checked(self):
        _, in_s, *_ = streams()
        ctx = ListContext(4)
        with pytest.raises(ExecutionError):
            ctx.bind_input(in_s, [[1, 2]])

    def test_table_lane_count_checked(self):
        _, _in, lut, *_ = streams()
        ctx = ListContext(2)
        with pytest.raises(ExecutionError):
            ctx.bind_table(lut, [[1]])

    def test_global_table_shared_across_lanes(self):
        _, _in, _lut, g, _o = streams()
        ctx = ListContext(3)
        ctx.bind_global(g, [7, 8, 9])
        assert ctx.idx_read(g, 0, 2) == 9
        assert ctx.idx_read(g, 2, 0) == 7

    def test_unbound_accesses_raise(self):
        _, in_s, lut, g, _o = streams()
        ctx = ListContext(1)
        with pytest.raises(ExecutionError):
            ctx.seq_read(in_s)
        with pytest.raises(ExecutionError):
            ctx.idx_read(lut, 0, 0)
        with pytest.raises(ExecutionError):
            ctx.idx_write(lut, 0, 0, 1)


class TestAccessSemantics:
    def test_seq_read_advances_all_lanes_together(self):
        _, in_s, *_ = streams()
        ctx = ListContext(2)
        ctx.bind_input(in_s, [[1, 2], [3, 4]])
        assert ctx.seq_read(in_s) == [1, 3]
        assert ctx.seq_read(in_s) == [2, 4]
        with pytest.raises(ExecutionError):
            ctx.seq_read(in_s)

    def test_idx_write_then_read(self):
        _, _in, lut, *_ = streams()
        ctx = ListContext(2)
        ctx.bind_table(lut, [[0, 0], [0, 0]])
        ctx.idx_write(lut, 1, 0, 42)
        assert ctx.idx_read(lut, 1, 0) == 42
        assert ctx.idx_read(lut, 0, 0) == 0  # per-lane isolation

    def test_idx_write_bounds_checked(self):
        _, _in, lut, *_ = streams()
        ctx = ListContext(1)
        ctx.bind_table(lut, [[0]])
        with pytest.raises(ExecutionError):
            ctx.idx_write(lut, 0, 5, 1)

    def test_output_collection(self):
        _, _in, _lut, _g, out = streams()
        ctx = ListContext(2)
        ctx.seq_write(out, ["a", "b"])
        ctx.seq_write(out, ["c", "d"])
        assert ctx.output("o") == [["a", "c"], ["b", "d"]]
        with pytest.raises(ExecutionError):
            ctx.output("missing")

    def test_table_inspection_requires_lane_for_per_lane(self):
        _, _in, lut, g, _o = streams()
        ctx = ListContext(2)
        ctx.bind_table(lut, [[1], [2]])
        ctx.bind_global(g, [3])
        assert ctx.table("t", lane=1) == [2]
        assert ctx.table("g") == [3]
        with pytest.raises(ExecutionError):
            ctx.table("t")
        with pytest.raises(ExecutionError):
            ctx.table("missing")
