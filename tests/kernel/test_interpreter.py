"""Functional kernel execution and trace generation."""

import pytest

from repro.errors import ExecutionError
from repro.kernel import KernelBuilder, KernelInterpreter, OpKind
from repro.kernel.contexts import ListContext


def lookup_kernel():
    b = KernelBuilder("lookup")
    in_s = b.istream("in")
    lut = b.idxl_istream("LUT")
    out = b.ostream("out")
    a = b.read(in_s)
    v = b.idx_read(lut, a)
    c = b.arith(lambda x, y: x + y, a, v, name="foo")
    b.write(out, c)
    return b.build(), in_s, lut, out


class TestBasicExecution:
    def test_figure10_lookup_semantics(self):
        k, in_s, lut, out = lookup_kernel()
        ctx = ListContext(lanes=2)
        ctx.bind_input(in_s, [[0, 2], [1, 3]])
        ctx.bind_table(lut, [[100, 200, 300, 400]] * 2)
        KernelInterpreter(k, 2, ctx).run(2)
        assert ctx.output("out") == [[100, 302], [201, 403]]

    def test_per_lane_tables_differ(self):
        k, in_s, lut, _ = lookup_kernel()
        ctx = ListContext(lanes=2)
        ctx.bind_input(in_s, [[0], [0]])
        ctx.bind_table(lut, [[10], [20]])
        KernelInterpreter(k, 2, ctx).run(1)
        assert ctx.output("out") == [[10], [20]]

    def test_constants_and_arith(self):
        b = KernelBuilder("k")
        out = b.ostream("o")
        x = b.const(3)
        y = b.const(4)
        b.write(out, b.add(b.mul(x, x), b.mul(y, y)))
        k = b.build()
        ctx = ListContext(lanes=1)
        KernelInterpreter(k, 1, ctx).run(1)
        assert ctx.output("o") == [[25]]

    def test_div(self):
        b = KernelBuilder("k")
        out = b.ostream("o")
        b.write(out, b.div(b.const(1.0), b.const(4.0)))
        k = b.build()
        ctx = ListContext(lanes=1)
        KernelInterpreter(k, 1, ctx).run(1)
        assert ctx.output("o") == [[0.25]]

    def test_select(self):
        b = KernelBuilder("k")
        in_s = b.istream("i")
        out = b.ostream("o")
        x = b.read(in_s)
        cond = b.lt(x, b.const(10))
        b.write(out, b.select(cond, b.const("small"), b.const("big")))
        k = b.build()
        ctx = ListContext(lanes=1)
        ctx.bind_input(in_s, [[5, 15]])
        KernelInterpreter(k, 1, ctx).run(2)
        assert ctx.output("o") == [["small", "big"]]

    def test_payload_error_is_wrapped(self):
        b = KernelBuilder("k")
        out = b.ostream("o")
        b.write(out, b.div(b.const(1.0), b.const(0.0)))
        k = b.build()
        with pytest.raises(ExecutionError, match="div"):
            KernelInterpreter(k, 1, ListContext(1)).run_iteration()


class TestCarries:
    def test_running_sum(self):
        b = KernelBuilder("sum")
        in_s = b.istream("i")
        out = b.ostream("o")
        acc = b.carry(0, "acc")
        x = b.read(in_s)
        nxt = b.add(acc, x)
        b.update(acc, nxt)
        b.write(out, nxt)
        k = b.build()
        ctx = ListContext(lanes=2)
        ctx.bind_input(in_s, [[1, 2, 3], [10, 20, 30]])
        interp = KernelInterpreter(k, 2, ctx)
        interp.run(3)
        assert ctx.output("o") == [[1, 3, 6], [10, 30, 60]]
        assert interp.carry_values("acc") == [6, 60]

    def test_carry_reads_previous_iteration_value(self):
        b = KernelBuilder("k")
        out = b.ostream("o")
        c = b.carry(7, "c")
        b.write(out, c)  # write BEFORE update: must see old value
        b.update(c, b.add(c, b.const(1)))
        k = b.build()
        ctx = ListContext(lanes=1)
        KernelInterpreter(k, 1, ctx).run(3)
        assert ctx.output("o") == [[7, 8, 9]]

    def test_unknown_carry_name(self):
        b = KernelBuilder("k")
        c = b.carry(0, "a")
        b.update(c, c)
        k = b.build()
        interp = KernelInterpreter(k, 1, ListContext(1))
        with pytest.raises(ExecutionError):
            interp.carry_values("missing")


class TestIndexedAccess:
    def test_predicated_idx_read_skips_lanes(self):
        b = KernelBuilder("k")
        in_s = b.istream("i")
        lut = b.idxl_istream("t")
        out = b.ostream("o")
        x = b.read(in_s)
        pred = b.lt(x, b.const(2))
        v = b.idx_read(lut, x, predicate=pred)
        b.write(out, v)
        k = b.build()
        ctx = ListContext(lanes=2)
        ctx.bind_input(in_s, [[0], [5]])
        ctx.bind_table(lut, [[100, 200]] * 2)
        interp = KernelInterpreter(k, 2, ctx)
        trace = interp.run_iteration()
        assert ctx.output("o") == [[100], [0]]  # lane 1 predicated off
        (_op, indices), = trace.by_kind(OpKind.IDX_ISSUE)
        assert indices == [0, None]
        (_op, counts), = trace.by_kind(OpKind.IDX_DATA)
        assert counts == [1, 0]

    def test_idx_write_mutates_table(self):
        b = KernelBuilder("k")
        wtab = b.idxl_ostream("w")
        b.idx_write(wtab, b.const(1), b.const(99))
        k = b.build()
        ctx = ListContext(lanes=2)
        ctx.bind_table(wtab, [[0, 0], [0, 0]])
        KernelInterpreter(k, 2, ctx).run(1)
        assert ctx.table("w", lane=0) == [0, 99]
        assert ctx.table("w", lane=1) == [0, 99]

    def test_predicated_idx_write(self):
        b = KernelBuilder("k")
        in_s = b.istream("i")
        wtab = b.idxl_ostream("w")
        x = b.read(in_s)
        b.idx_write(wtab, b.const(0), x, predicate=x)
        k = b.build()
        ctx = ListContext(lanes=2)
        ctx.bind_input(in_s, [[0], [5]])
        ctx.bind_table(wtab, [[-1], [-1]])
        trace = KernelInterpreter(k, 2, ctx).run_iteration()
        assert ctx.table("w", lane=0) == [-1]
        assert ctx.table("w", lane=1) == [5]
        (_op, detail), = trace.by_kind(OpKind.IDX_WRITE)
        assert detail == [None, (0, [5])]

    def test_global_table_for_crosslane(self):
        b = KernelBuilder("k")
        nodes = b.idx_istream("n")
        in_s = b.istream("i")
        out = b.ostream("o")
        idx = b.read(in_s)
        b.write(out, b.idx_read(nodes, idx))
        k = b.build()
        ctx = ListContext(lanes=2)
        ctx.bind_input(in_s, [[3], [0]])
        ctx.bind_global(nodes, [5, 6, 7, 8])
        KernelInterpreter(k, 2, ctx).run(1)
        assert ctx.output("o") == [[8], [5]]


class TestComm:
    def test_rotation_permutation(self):
        b = KernelBuilder("k")
        in_s = b.istream("i")
        out = b.ostream("o")
        lane_id = b.istream("lane")
        x = b.read(in_s)
        me = b.read(lane_id)
        src = b.add(me, b.const(1))
        b.write(out, b.comm(x, src))
        k = b.build()
        ctx = ListContext(lanes=4)
        ctx.bind_input(in_s, [[10], [11], [12], [13]])
        ctx.bind_input(lane_id, [[0], [1], [2], [3]])
        KernelInterpreter(k, 4, ctx).run(1)
        assert ctx.output("o") == [[11], [12], [13], [10]]

    def test_comm_appears_in_trace(self):
        b = KernelBuilder("k")
        out = b.ostream("o")
        b.write(out, b.comm(b.const(1), b.const(0)))
        k = b.build()
        trace = KernelInterpreter(k, 2, ListContext(2)).run_iteration()
        assert len(trace.by_kind(OpKind.COMM)) == 1


class TestContextErrors:
    def test_exhausted_input_raises(self):
        k, in_s, lut, _ = lookup_kernel()
        ctx = ListContext(lanes=1)
        ctx.bind_input(in_s, [[0]])
        ctx.bind_table(lut, [[9]])
        interp = KernelInterpreter(k, 1, ctx)
        interp.run(1)
        with pytest.raises(ExecutionError):
            interp.run_iteration()

    def test_unbound_table_raises(self):
        k, in_s, _lut, _ = lookup_kernel()
        ctx = ListContext(lanes=1)
        ctx.bind_input(in_s, [[0]])
        with pytest.raises(ExecutionError):
            KernelInterpreter(k, 1, ctx).run_iteration()

    def test_out_of_range_index_raises(self):
        k, in_s, lut, _ = lookup_kernel()
        ctx = ListContext(lanes=1)
        ctx.bind_input(in_s, [[5]])
        ctx.bind_table(lut, [[1, 2]])
        with pytest.raises(ExecutionError):
            KernelInterpreter(k, 1, ctx).run_iteration()
