"""KernelC front-end: the paper's §4.7 programmer interface."""

import pytest

from repro.kernel import (
    KernelCError,
    KernelInterpreter,
    ModuloScheduler,
    OpKind,
    compile_kernelc,
)
from repro.kernel.contexts import ListContext

FIGURE_10 = """
kernel lookup(
    istream<int> in,       // sequential in stream
    idxl_istream<int> LUT, // indexed in stream
    ostream<int> out) {    // seq. out stream
    int a, b, c;
    while (!eos(in)) {
        in >> a;           // sequential stream access
        LUT[a] >> b;       // indexed stream access
        c = foo(a, b);
        out << c;
    }
}
"""


def run_kernel(source, inputs, tables=None, iterations=None, lanes=1,
               intrinsics=None):
    kernel, streams = compile_kernelc(source, intrinsics=intrinsics)
    ctx = ListContext(lanes)
    for name, data in inputs.items():
        ctx.bind_input(streams[name], data)
    for name, table in (tables or {}).items():
        ctx.bind_table(streams[name], table)
    iterations = iterations or len(next(iter(inputs.values()))[0])
    KernelInterpreter(kernel, lanes, ctx).run(iterations)
    return ctx, kernel, streams


class TestFigure10:
    def test_compiles_verbatim(self):
        kernel, streams = compile_kernelc(
            FIGURE_10, intrinsics={"foo": lambda a, b: a + b}
        )
        assert kernel.name == "lookup"
        assert set(streams) == {"in", "LUT", "out"}
        kinds = [op.kind for op in kernel.ops]
        assert OpKind.IDX_ISSUE in kinds and OpKind.SEQ_WRITE in kinds

    def test_executes_correctly(self):
        ctx, *_ = run_kernel(
            FIGURE_10,
            inputs={"in": [[0, 2, 1]]},
            tables={"LUT": [[10, 20, 30]]},
            intrinsics={"foo": lambda a, b: a + b},
        )
        assert ctx.output("out") == [[10, 32, 21]]

    def test_schedules(self):
        kernel, _ = compile_kernelc(
            FIGURE_10, intrinsics={"foo": lambda a, b: a + b}
        )
        schedule = ModuloScheduler().schedule(kernel)
        assert schedule.ii >= 1


class TestLanguageFeatures:
    def test_carry_inference_for_accumulator(self):
        source = """
        kernel acc(istream<int> in, ostream<int> out) {
            int sum = 100;
            int x;
            while (!eos(in)) {
                in >> x;
                sum = sum + x;
                out << sum;
            }
        }
        """
        ctx, kernel, _ = run_kernel(source, {"in": [[1, 2, 3]]})
        assert ctx.output("out") == [[101, 103, 106]]
        assert len(kernel.carries) == 1
        assert kernel.carries[0].name == "sum"

    def test_no_carry_when_written_before_read(self):
        source = """
        kernel k(istream<int> in, ostream<int> out) {
            int x, y;
            while (!eos(in)) {
                in >> x;
                y = x * 2;
                out << y;
            }
        }
        """
        _, kernel, _ = run_kernel(source, {"in": [[4]]})
        assert kernel.carries == []

    def test_ternary_and_comparisons(self):
        source = """
        kernel pick(istream<int> a, istream<int> b, ostream<int> out) {
            int x, y;
            while (!eos(a)) {
                a >> x;
                b >> y;
                out << (x < y ? x : y);
            }
        }
        """
        ctx, *_ = run_kernel(source, {"a": [[5, 1]], "b": [[3, 4]]})
        assert ctx.output("out") == [[3, 1]]

    def test_operator_precedence(self):
        source = """
        kernel k(istream<int> in, ostream<int> out) {
            int x;
            while (!eos(in)) {
                in >> x;
                out << (1 + 2 * x);
                out << ((x + 1) * 2);
                out << (x - 1 - 1);
                out << (x & 3 | 4);
            }
        }
        """
        ctx, *_ = run_kernel(source, {"in": [[5]]}, iterations=1)
        assert ctx.output("out") == [[11, 12, 3, 5]]

    def test_bitwise_and_shift_lower_to_logic_ops(self):
        source = """
        kernel k(istream<int> in, ostream<int> out) {
            int x;
            while (!eos(in)) {
                in >> x;
                out << ((x >> 2) ^ (x << 1) & 0xFF);
            }
        }
        """
        ctx, kernel, _ = run_kernel(source, {"in": [[0x5A]]}, iterations=1)
        expected = (0x5A >> 2) ^ ((0x5A << 1) & 0xFF)
        assert ctx.output("out") == [[expected]]
        assert any(op.kind is OpKind.LOGIC for op in kernel.ops)

    def test_mul_div_use_costly_units(self):
        source = """
        kernel k(istream<float> in, ostream<float> out) {
            float x;
            while (!eos(in)) {
                in >> x;
                out << (x * 3.0 / 2.0);
            }
        }
        """
        _, kernel, _ = run_kernel(source, {"in": [[4.0]]}, iterations=1)
        kinds = {op.kind for op in kernel.ops}
        assert OpKind.MUL in kinds and OpKind.DIV in kinds

    def test_indexed_write_and_readwrite_stream(self):
        source = """
        kernel hist(istream<int> in, idxl_iostream<int> bins) {
            int v, c;
            while (!eos(in)) {
                in >> v;
                bins[v] >> c;
                bins[v] << c + 1;
            }
        }
        """
        kernel, streams = compile_kernelc(source)
        ctx = ListContext(1)
        ctx.bind_input(streams["in"], [[0, 1, 0]])
        ctx.bind_table(streams["bins"], [[0, 0]])
        KernelInterpreter(kernel, 1, ctx).run(3)
        assert ctx.table("bins", lane=0) == [2, 1]

    def test_comm_and_laneid_builtins(self):
        source = """
        kernel rotate(istream<int> in, ostream<int> out) {
            int x;
            while (!eos(in)) {
                in >> x;
                out << comm(x, laneid() + 1);
            }
        }
        """
        kernel, streams = compile_kernelc(source)
        ctx = ListContext(4)
        ctx.bind_input(streams["in"], [[10], [11], [12], [13]])
        KernelInterpreter(kernel, 4, ctx).run(1)
        assert ctx.output("out") == [[11], [12], [13], [10]]

    def test_builtin_intrinsics(self):
        source = """
        kernel k(istream<int> in, ostream<int> out) {
            int x;
            while (!eos(in)) {
                in >> x;
                out << max(min(x, 10), 0);
            }
        }
        """
        ctx, *_ = run_kernel(source, {"in": [[-5, 3, 99]]})
        assert ctx.output("out") == [[0, 3, 10]]


class TestErrors:
    def test_undeclared_variable(self):
        with pytest.raises(KernelCError, match="undeclared"):
            compile_kernelc("""
            kernel k(istream<int> in, ostream<int> out) {
                while (!eos(in)) { in >> x; }
            }
            """)

    def test_unknown_stream_type(self):
        with pytest.raises(KernelCError, match="unknown stream type"):
            compile_kernelc("kernel k(wibble<int> s) { }")

    def test_unknown_intrinsic(self):
        with pytest.raises(KernelCError, match="unknown intrinsic"):
            compile_kernelc("""
            kernel k(istream<int> in, ostream<int> out) {
                int x;
                while (!eos(in)) { in >> x; out << mystery(x); }
            }
            """)

    def test_stream_used_as_value(self):
        with pytest.raises(KernelCError, match="used as a value"):
            compile_kernelc("""
            kernel k(istream<int> in, ostream<int> out) {
                int x;
                while (!eos(in)) { x = in + 1; }
            }
            """)

    def test_nested_loops_rejected(self):
        with pytest.raises(KernelCError, match="nested"):
            compile_kernelc("""
            kernel k(istream<int> in, ostream<int> out) {
                int x;
                while (!eos(in)) { while (!eos(in)) { in >> x; } }
            }
            """)

    def test_eos_of_unknown_stream(self):
        with pytest.raises(KernelCError, match="unknown stream"):
            compile_kernelc("""
            kernel k(istream<int> in, ostream<int> out) {
                while (!eos(nope)) { }
            }
            """)

    def test_garbage_input(self):
        with pytest.raises(KernelCError):
            compile_kernelc("kernel @@@")
