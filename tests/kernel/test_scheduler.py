"""Modulo scheduler: MII bounds, legality, Figure 14 behaviour."""

import pytest

from repro.errors import ScheduleError
from repro.kernel import (
    ClusterResources,
    KernelBuilder,
    ModuloScheduler,
    OpKind,
    min_ii_recurrence,
    min_ii_resources,
)
from repro.kernel.resources import resource_key


def verify_schedule(schedule, resources=None):
    """Assert every dependence and resource constraint holds."""
    resources = resources or ClusterResources()
    kernel = schedule.kernel
    edges = kernel.dependence_edges(
        schedule.inlane_separation, schedule.crosslane_separation
    )
    for edge in edges:
        gap = schedule.slots[edge.sink.op_id] - schedule.slots[edge.source.op_id]
        assert gap >= edge.latency - schedule.ii * edge.distance, (
            f"{edge.source.name}->{edge.sink.name} violated"
        )
    usage = {}
    for op in kernel.ops:
        key = resource_key(op)
        if key is None:
            continue
        slot = schedule.slots[op.op_id]
        for k in range(op.spec.reserved_cycles):
            cell = (key, (slot + k) % schedule.ii)
            usage[cell] = usage.get(cell, 0) + 1
    for (key, _slot), used in usage.items():
        assert used <= resources.count(key), f"resource {key} oversubscribed"


def pipelinable_lookup_kernel(lookups=1):
    """No loop-carried deps: schedules flat with separation."""
    b = KernelBuilder("pipelinable")
    in_s = b.istream("in")
    out = b.ostream("out")
    x = b.read(in_s)
    acc = x
    for i in range(lookups):
        lut = b.idxl_istream(f"lut{i}")
        v = b.idx_read(lut, acc if i == 0 else x)
        acc = b.add(acc, v)
    b.write(out, acc)
    return b.build()


def loop_carried_kernel():
    """Index computation depends on previous iteration's fetched data."""
    b = KernelBuilder("carried")
    lut = b.idxl_istream("T")
    out = b.ostream("o")
    ptr = b.carry(0, "ptr")
    v = b.idx_read(lut, ptr)
    nxt = b.arith(lambda x: int(x) % 8, v, name="next_ptr")
    b.update(ptr, nxt)
    b.write(out, v)
    return b.build()


class TestMiiBounds:
    def test_resmii_counts_alu_pressure(self):
        b = KernelBuilder("k")
        out = b.ostream("o")
        acc = b.const(0)
        for _ in range(8):  # 8 ALU ops on 4 ALUs -> ResMII 2
            acc = b.add(acc, b.const(1))
        b.write(out, acc)
        k = b.build()
        assert min_ii_resources(k, ClusterResources()) == 2

    def test_unpipelined_divider_dominates_resmii(self):
        b = KernelBuilder("k")
        out = b.ostream("o")
        b.write(out, b.div(b.const(1.0), b.const(2.0)))
        k = b.build()
        # One 16-cycle unpipelined divide blocks the divider for 16 cycles.
        assert min_ii_resources(k, ClusterResources()) == 16

    def test_recmii_for_simple_accumulator(self):
        b = KernelBuilder("k")
        out = b.ostream("o")
        acc = b.carry(0, "acc")
        nxt = b.add(acc, b.const(1))  # ARITH latency 2, distance 1
        b.update(acc, nxt)
        b.write(out, nxt)
        k = b.build()
        assert min_ii_recurrence(k, 6, 20) == 2

    def test_recmii_grows_with_separation_on_index_recurrence(self):
        k = loop_carried_kernel()
        r2 = min_ii_recurrence(k, 2, 20)
        r10 = min_ii_recurrence(k, 10, 20)
        assert r10 == r2 + 8  # cycle contains exactly one separation edge

    def test_acyclic_kernel_recmii_bounded_by_buffer_capacity(self):
        # No true recurrences, but the reorder buffer (8 words) bounds
        # outstanding accesses: II >= ceil(separation / capacity).
        assert min_ii_recurrence(pipelinable_lookup_kernel(), 10, 24) == 2
        assert min_ii_recurrence(pipelinable_lookup_kernel(), 6, 24) == 1

    def test_larger_buffers_relax_the_capacity_bound(self):
        k = pipelinable_lookup_kernel()
        assert min_ii_recurrence(k, 10, 24, stream_capacity_words=16) == 1


class TestScheduleLegality:
    @pytest.mark.parametrize("sep", [2, 4, 6, 8, 10])
    def test_pipelinable_kernel_all_separations(self, sep):
        k = pipelinable_lookup_kernel(lookups=2)
        s = ModuloScheduler().schedule(k, inlane_separation=sep)
        verify_schedule(s)

    @pytest.mark.parametrize("sep", [2, 4, 6, 8, 10])
    def test_loop_carried_kernel_all_separations(self, sep):
        s = ModuloScheduler().schedule(
            loop_carried_kernel(), inlane_separation=sep
        )
        verify_schedule(s)

    def test_divider_kernel_schedules(self):
        b = KernelBuilder("k")
        in_s = b.istream("i")
        out = b.ostream("o")
        x = b.read(in_s)
        b.write(out, b.div(b.const(1.0), x))
        s = ModuloScheduler().schedule(b.build())
        verify_schedule(s)
        assert s.ii >= 16

    def test_heavy_alu_kernel_respects_units(self):
        b = KernelBuilder("k")
        in_s = b.istream("i")
        out = b.ostream("o")
        x = b.read(in_s)
        acc = x
        for _ in range(16):
            acc = b.mul(acc, x)
        b.write(out, acc)
        s = ModuloScheduler().schedule(b.build())
        verify_schedule(s)
        assert s.ii >= 4  # 16 muls on 4 ALUs

    def test_index_port_limit_one_issue_per_stream_per_cycle(self):
        # Section 5.3's single-access-per-stream-per-cycle limit: 4
        # lookups into ONE stream force II >= 4.
        b = KernelBuilder("k")
        in_s = b.istream("i")
        lut = b.idxl_istream("t")
        out = b.ostream("o")
        x = b.read(in_s)
        acc = x
        for _ in range(4):
            acc = b.add(acc, b.idx_read(lut, x))
        b.write(out, acc)
        s = ModuloScheduler().schedule(b.build())
        verify_schedule(s)
        assert s.ii >= 4

    def test_lookups_across_streams_can_overlap(self):
        # The same 4 lookups spread over 4 streams do not force II 4.
        k = pipelinable_lookup_kernel(lookups=4)
        s = ModuloScheduler().schedule(k)
        assert s.ii < 4 + 1


class TestFigure14Behaviour:
    def test_pipelinable_ii_flat_with_separation(self):
        # Software-pipelinable kernels keep a flat II as separation grows
        # (Figure 14); only the buffer-capacity bound (sep/8, at most 2
        # here) can nudge the II at the largest separations.
        iis = [
            ModuloScheduler().schedule(
                pipelinable_lookup_kernel(2), inlane_separation=sep
            ).ii
            for sep in (2, 6, 10)
        ]
        assert iis[0] == iis[1]
        assert iis[2] <= iis[1] + 1

    def test_pipelinable_depth_grows_with_separation(self):
        depths = [
            ModuloScheduler().schedule(
                pipelinable_lookup_kernel(2), inlane_separation=sep
            ).depth
            for sep in (2, 6, 10)
        ]
        assert depths[0] < depths[1] < depths[2]

    def test_loop_carried_ii_grows_with_separation(self):
        iis = [
            ModuloScheduler().schedule(
                loop_carried_kernel(), inlane_separation=sep
            ).ii
            for sep in (2, 6, 10)
        ]
        assert iis[0] < iis[1] < iis[2]

    def test_stages_counted_from_depth(self):
        s = ModuloScheduler().schedule(
            pipelinable_lookup_kernel(2), inlane_separation=10
        )
        assert s.stages == -(-s.depth // s.ii)


class TestScheduleApi:
    def test_timed_stream_ops_sorted_by_slot(self):
        s = ModuloScheduler().schedule(pipelinable_lookup_kernel(2))
        slots = [s.slots[op.op_id] for op in s.timed_stream_ops()]
        assert slots == sorted(slots)
        kinds = {op.kind for op in s.timed_stream_ops()}
        assert OpKind.ARITH not in kinds

    def test_total_cycles(self):
        s = ModuloScheduler().schedule(pipelinable_lookup_kernel())
        assert s.total_cycles(0) == 0
        assert s.total_cycles(1) == s.depth
        assert s.total_cycles(10) == s.depth + 9 * s.ii

    def test_comm_slots_recorded(self):
        b = KernelBuilder("k")
        out = b.ostream("o")
        b.write(out, b.comm(b.const(1), b.const(0)))
        s = ModuloScheduler().schedule(b.build())
        assert len(s.comm_slots) == 1

    def test_describe_mentions_all_ops(self):
        k = pipelinable_lookup_kernel()
        s = ModuloScheduler().schedule(k)
        text = s.describe()
        for op in k.ops:
            assert op.name in text

    def test_slot_of_unknown_op_raises(self):
        s = ModuloScheduler().schedule(pipelinable_lookup_kernel())
        other = pipelinable_lookup_kernel()
        with pytest.raises(ScheduleError):
            s.slot_of(other.ops[0])
