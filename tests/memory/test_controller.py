"""Stream memory controller: loads, stores, gathers, scatters, cache path."""

import pytest

from repro.config import base_config, cache_config
from repro.core.descriptors import StreamDescriptor, StreamKind
from repro.core.srf import StreamRegisterFile
from repro.errors import MemorySystemError
from repro.memory import (
    MainMemory,
    MemoryController,
    gather_op,
    load_op,
    scatter_op,
    store_op,
)


def make_machine(config=None):
    config = config or base_config()
    srf = StreamRegisterFile(config)
    memory = MainMemory(row_words=config.dram_row_words)
    controller = MemoryController(config, srf, memory)
    return srf, memory, controller


def run_until_complete(srf, controller, op, limit=5000):
    controller.issue(op, 0)
    for cycle in range(limit):
        controller.tick(cycle)
        srf.tick(cycle)
        if controller.is_complete(op.op_id):
            return cycle
    raise AssertionError(f"{op.describe()} did not complete in {limit} cycles")


class TestLoadStore:
    def test_load_moves_data_into_srf(self):
        srf, memory, controller = make_machine()
        region = memory.allocate(64, "input")
        memory.load_region(region, list(range(64)))
        alloc = srf.allocator.allocate(64, "s")
        desc = StreamDescriptor("s", StreamKind.SEQUENTIAL_READ, alloc.base, 64)
        run_until_complete(srf, controller, load_op(desc, region))
        assert srf.storage.read_range(alloc.base, 64) == list(range(64))

    def test_store_moves_data_out_of_srf(self):
        srf, memory, controller = make_machine()
        region = memory.allocate(64, "output")
        alloc = srf.allocator.allocate(64, "s")
        srf.storage.write_range(alloc.base, [i * 2 for i in range(64)])
        desc = StreamDescriptor("s", StreamKind.SEQUENTIAL_WRITE, alloc.base, 64)
        run_until_complete(srf, controller, store_op(desc, region))
        assert memory.read_range(region.base, 64) == [i * 2 for i in range(64)]

    def test_load_respects_dram_latency(self):
        srf, memory, controller = make_machine()
        region = memory.allocate(32, "input")
        alloc = srf.allocator.allocate(32, "s")
        desc = StreamDescriptor("s", StreamKind.SEQUENTIAL_READ, alloc.base, 32)
        cycle = run_until_complete(srf, controller, load_op(desc, region))
        assert cycle >= base_config().dram_latency_cycles

    def test_bandwidth_bound_duration(self):
        # 1024 words at ~2.285 words/cycle needs >= ~448 cycles.
        srf, memory, controller = make_machine()
        region = memory.allocate(1024, "input")
        alloc = srf.allocator.allocate(1024, "s")
        desc = StreamDescriptor(
            "s", StreamKind.SEQUENTIAL_READ, alloc.base, 1024
        )
        cycle = run_until_complete(srf, controller, load_op(desc, region))
        minimum = 1024 / base_config().dram_words_per_cycle
        assert cycle >= minimum
        assert cycle <= 2.0 * minimum + base_config().dram_latency_cycles

    def test_offchip_traffic_counts_words(self):
        srf, memory, controller = make_machine()
        region = memory.allocate(96, "input")
        alloc = srf.allocator.allocate(96, "s")
        desc = StreamDescriptor("s", StreamKind.SEQUENTIAL_READ, alloc.base, 96)
        run_until_complete(srf, controller, load_op(desc, region))
        assert controller.offchip_traffic_words == 96


class TestGatherScatter:
    def test_gather_collects_arbitrary_addresses(self):
        srf, memory, controller = make_machine()
        region = memory.allocate(128, "table")
        memory.load_region(region, [i * 10 for i in range(128)])
        alloc = srf.allocator.allocate(32, "g")
        desc = StreamDescriptor("g", StreamKind.SEQUENTIAL_READ, alloc.base, 32)
        offsets = [(7 * i) % 128 for i in range(32)]
        run_until_complete(srf, controller, gather_op(desc, region, offsets))
        expected = [off * 10 for off in offsets]
        assert srf.storage.read_range(alloc.base, 32) == expected

    def test_scatter_distributes_to_arbitrary_addresses(self):
        srf, memory, controller = make_machine()
        region = memory.allocate(128, "out")
        alloc = srf.allocator.allocate(32, "s")
        srf.storage.write_range(alloc.base, [100 + i for i in range(32)])
        desc = StreamDescriptor("s", StreamKind.SEQUENTIAL_WRITE, alloc.base, 32)
        offsets = [(11 * i) % 128 for i in range(32)]
        run_until_complete(srf, controller, scatter_op(desc, region, offsets))
        for j, off in enumerate(offsets):
            assert memory.read(region.addr(off)) == 100 + j

    def test_gather_out_of_region_rejected(self):
        srf, memory, controller = make_machine()
        region = memory.allocate(16, "table")
        alloc = srf.allocator.allocate(32, "g")
        desc = StreamDescriptor("g", StreamKind.SEQUENTIAL_READ, alloc.base, 4)
        with pytest.raises(MemorySystemError):
            gather_op(desc, region, [0, 1, 2, 16])

    def test_scattered_random_traffic_is_slower_per_word(self):
        srf, memory, controller = make_machine()
        big = memory.allocate(1 << 16, "big")
        seq_alloc = srf.allocator.allocate(512, "seq")
        seq_desc = StreamDescriptor(
            "seq", StreamKind.SEQUENTIAL_READ, seq_alloc.base, 512
        )
        seq_cycles = run_until_complete(
            srf, controller, load_op(seq_desc, big, 0, 512)
        )
        srf2, memory2, controller2 = make_machine()
        big2 = memory2.allocate(1 << 16, "big")
        g_alloc = srf2.allocator.allocate(512, "g")
        g_desc = StreamDescriptor(
            "g", StreamKind.SEQUENTIAL_READ, g_alloc.base, 512
        )
        offsets = [(i * 7919) % (1 << 16) for i in range(512)]
        gather_cycles = run_until_complete(
            srf2, controller2, gather_op(g_desc, big2, offsets)
        )
        assert gather_cycles > 1.5 * seq_cycles


class TestConcurrency:
    def test_oldest_op_gets_priority(self):
        # The stream controller drains transfers in issue order: the
        # older load finishes at (nearly) full bandwidth, the younger
        # one fills leftover bandwidth and finishes afterwards.
        srf, memory, controller = make_machine()
        r1 = memory.allocate(512, "a")
        r2 = memory.allocate(512, "b")
        a1 = srf.allocator.allocate(512, "sa")
        a2 = srf.allocator.allocate(512, "sb")
        d1 = StreamDescriptor("sa", StreamKind.SEQUENTIAL_READ, a1.base, 512)
        d2 = StreamDescriptor("sb", StreamKind.SEQUENTIAL_READ, a2.base, 512)
        op1, op2 = load_op(d1, r1), load_op(d2, r2)
        controller.issue(op1, 0)
        controller.issue(op2, 0)
        done = {}
        for cycle in range(5000):
            controller.tick(cycle)
            srf.tick(cycle)
            for op in (op1, op2):
                if controller.is_complete(op.op_id) and op.op_id not in done:
                    done[op.op_id] = cycle
            if len(done) == 2:
                break
        assert len(done) == 2
        single_op_time = 512 / base_config().dram_words_per_cycle
        assert done[op1.op_id] < done[op2.op_id]
        # op1 is barely slowed by op2's presence.
        assert done[op1.op_id] <= 1.5 * single_op_time + 150
        # Both together still finish in roughly 2x the single-op time.
        assert done[op2.op_id] <= 2.5 * single_op_time + 150


class TestCachePath:
    def test_cacheable_reuse_cuts_offchip_traffic(self):
        config = cache_config()
        srf, memory, controller = make_machine(config)
        table = memory.allocate(256, "table")
        memory.load_region(table, list(range(256)))
        total_offchip = []
        for round_index in range(2):
            alloc = srf.allocator.allocate(256, f"g{round_index}")
            desc = StreamDescriptor(
                f"g{round_index}", StreamKind.SEQUENTIAL_READ, alloc.base, 256
            )
            op = gather_op(desc, table, list(range(256)), cacheable=True)
            controller.issue(op, 0)
            for cycle in range(5000):
                controller.tick(cycle)
                srf.tick(cycle)
                if controller.is_complete(op.op_id):
                    break
            total_offchip.append(controller.offchip_traffic_words)
        first_round = total_offchip[0]
        second_round = total_offchip[1] - total_offchip[0]
        assert second_round == 0  # everything hit in cache
        assert first_round >= 256

    def test_non_cacheable_bypasses_cache(self):
        config = cache_config()
        srf, memory, controller = make_machine(config)
        region = memory.allocate(64, "input")
        alloc = srf.allocator.allocate(64, "s")
        desc = StreamDescriptor("s", StreamKind.SEQUENTIAL_READ, alloc.base, 64)
        run_until_complete(srf, controller, load_op(desc, region, cacheable=False))
        assert controller.cache.stats.accesses == 0
