"""Stream memory op construction and validation."""

import pytest

from repro.core.descriptors import StreamDescriptor, StreamKind
from repro.errors import MemorySystemError
from repro.memory import (
    MainMemory,
    MemoryOpKind,
    StreamMemoryOp,
    gather_op,
    load_op,
    scatter_op,
    store_op,
)


def descriptor(words=32):
    return StreamDescriptor("s", StreamKind.SEQUENTIAL_READ, 0, words)


class TestOpKinds:
    def test_direction_classification(self):
        assert MemoryOpKind.LOAD.into_srf
        assert MemoryOpKind.GATHER.into_srf
        assert not MemoryOpKind.STORE.into_srf
        assert not MemoryOpKind.SCATTER.into_srf


class TestConstruction:
    def test_load_defaults_to_stream_length(self):
        mem = MainMemory()
        region = mem.allocate(64, "r")
        op = load_op(descriptor(32), region)
        assert op.words == 32
        assert op.mem_addrs[0] == region.base
        assert op.describe() == "load:s"

    def test_window_bounds_checked(self):
        mem = MainMemory()
        region = mem.allocate(16, "r")
        with pytest.raises(MemorySystemError):
            load_op(descriptor(32), region, offset=0, words=32)
        with pytest.raises(MemorySystemError):
            store_op(descriptor(8), region, offset=12, words=8)
        with pytest.raises(MemorySystemError):
            load_op(descriptor(8), region, words=0)

    def test_transfer_cannot_exceed_srf_stream(self):
        mem = MainMemory()
        region = mem.allocate(64, "r")
        with pytest.raises(MemorySystemError):
            StreamMemoryOp(MemoryOpKind.LOAD, descriptor(8),
                           list(range(region.base, region.base + 16)))

    def test_empty_transfer_rejected(self):
        with pytest.raises(MemorySystemError):
            StreamMemoryOp(MemoryOpKind.LOAD, descriptor(8), [])

    def test_gather_and_scatter_resolve_offsets(self):
        mem = MainMemory()
        region = mem.allocate(16, "r")
        op = gather_op(descriptor(4), region, [3, 1, 2, 0])
        assert op.mem_addrs == [region.base + 3, region.base + 1,
                                region.base + 2, region.base + 0]
        op = scatter_op(descriptor(4), region, [0, 15, 7, 8])
        assert op.kind is MemoryOpKind.SCATTER
        assert not op.into_srf

    def test_gather_offset_out_of_region(self):
        mem = MainMemory()
        region = mem.allocate(16, "r")
        with pytest.raises(MemorySystemError):
            gather_op(descriptor(4), region, [0, 16, 1, 2])

    def test_op_ids_unique_and_names_default(self):
        mem = MainMemory()
        region = mem.allocate(16, "r")
        a = load_op(descriptor(4), region, words=4)
        b = load_op(descriptor(4), region, words=4)
        assert a.op_id != b.op_id
        named = load_op(descriptor(4), region, words=4, name="custom")
        assert named.describe() == "custom"
