"""Main memory allocator and functional storage."""

import pytest

from repro.errors import MemorySystemError
from repro.memory import MainMemory


class TestAllocation:
    def test_regions_are_row_aligned_and_disjoint(self):
        mem = MainMemory(row_words=512)
        a = mem.allocate(100, "a")
        b = mem.allocate(600, "b")
        assert a.base % 512 == 0
        assert b.base % 512 == 0
        assert b.base >= a.base + 512

    def test_duplicate_names_rejected(self):
        mem = MainMemory()
        mem.allocate(10, "a")
        with pytest.raises(MemorySystemError):
            mem.allocate(10, "a")

    def test_region_lookup(self):
        mem = MainMemory()
        region = mem.allocate(10, "a")
        assert mem.region("a") == region
        with pytest.raises(MemorySystemError):
            mem.region("missing")

    def test_region_addr_bounds(self):
        mem = MainMemory()
        region = mem.allocate(10, "a")
        assert region.addr(0) == region.base
        assert region.addr(9) == region.base + 9
        with pytest.raises(MemorySystemError):
            region.addr(10)
        with pytest.raises(MemorySystemError):
            region.addr(-1)

    def test_nonpositive_allocation_rejected(self):
        with pytest.raises(MemorySystemError):
            MainMemory().allocate(0, "z")


class TestStorage:
    def test_uninitialised_reads_zero(self):
        mem = MainMemory()
        assert mem.read(1234) == 0

    def test_roundtrip_and_ranges(self):
        mem = MainMemory()
        mem.write_range(100, [1, 2, 3])
        assert mem.read_range(100, 3) == [1, 2, 3]
        assert mem.read_range(99, 5) == [0, 1, 2, 3, 0]

    def test_load_and_dump_region(self):
        mem = MainMemory()
        region = mem.allocate(4, "r")
        mem.load_region(region, [9, 8, 7, 6])
        assert mem.dump_region(region) == [9, 8, 7, 6]

    def test_load_region_overflow_rejected(self):
        mem = MainMemory()
        region = mem.allocate(2, "r")
        with pytest.raises(MemorySystemError):
            mem.load_region(region, [1, 2, 3])

    def test_negative_address_rejected(self):
        mem = MainMemory()
        with pytest.raises(MemorySystemError):
            mem.read(-1)
        with pytest.raises(MemorySystemError):
            mem.write(-1, 0)
