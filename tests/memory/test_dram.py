"""DRAM bandwidth and row-buffer locality model."""

import random

import pytest

from repro.config import base_config
from repro.memory.dram import DramModel


def make_dram(**overrides):
    return DramModel(base_config(**overrides))


def sustained_words(dram, addr_stream, cycles):
    """Words transferred when offering addresses continuously."""
    it = iter(addr_stream)
    pending = next(it)
    moved = 0
    for _ in range(cycles):
        dram.begin_cycle()
        while dram.try_access(pending, is_write=False):
            moved += 1
            pending = next(it)
    return moved


class TestBandwidth:
    def test_sequential_achieves_near_peak(self):
        dram = make_dram()
        cycles = 2000
        moved = sustained_words(dram, iter(range(10**9)), cycles)
        peak = base_config().dram_words_per_cycle * cycles
        assert moved >= 0.95 * peak

    def test_random_is_substantially_slower_than_sequential(self):
        rng = random.Random(7)
        dram = make_dram()
        span = 1 << 22  # far larger than open rows can cover
        random_stream = (rng.randrange(span) for _ in range(10**9))
        cycles = 2000
        moved = sustained_words(dram, random_stream, cycles)
        peak = base_config().dram_words_per_cycle * cycles
        assert moved <= 0.5 * peak

    def test_small_table_gathers_stay_fast(self):
        # A Rijndael-sized table spans few rows; its rows stay open, so
        # random lookups into it approach streaming bandwidth.
        rng = random.Random(7)
        dram = make_dram()
        table_words = 1024  # two 512-word rows
        stream = (rng.randrange(table_words) for _ in range(10**9))
        cycles = 2000
        moved = sustained_words(dram, stream, cycles)
        peak = base_config().dram_words_per_cycle * cycles
        assert moved >= 0.9 * peak

    def test_budget_does_not_accumulate_unbounded(self):
        dram = make_dram()
        for _ in range(10_000):  # long idle period
            dram.begin_cycle()
        dram.begin_cycle()
        moved = 0
        while dram.try_access(moved, False):
            moved += 1
        assert moved <= 5 * base_config().dram_words_per_cycle + 1


def recover(dram, cycles=10):
    """Accrue enough budget to absorb a prior row-miss charge."""
    for _ in range(cycles):
        dram.begin_cycle()


class TestRowBuffer:
    def test_hits_and_misses_counted(self):
        dram = make_dram()
        recover(dram)
        assert dram.try_access(0, False)   # miss (cold row)
        recover(dram)
        assert dram.try_access(1, False)   # hit (same row)
        assert dram.stats.row_misses == 1
        assert dram.stats.row_hits == 1

    def test_reset_rows_forces_misses(self):
        dram = make_dram()
        recover(dram)
        assert dram.try_access(0, False)
        dram.reset_rows()
        recover(dram)
        assert dram.try_access(1, False)
        assert dram.stats.row_misses == 2

    def test_read_write_words_tracked(self):
        dram = make_dram()
        recover(dram)
        assert dram.try_access(0, False)
        recover(dram)
        assert dram.try_access(0, True)
        assert dram.stats.read_words == 1
        assert dram.stats.write_words == 1
        assert dram.stats.total_words == 2

    def test_miss_charge_delays_next_access(self):
        dram = make_dram()
        dram.begin_cycle()
        assert dram.try_access(0, False)  # cold miss eats several cycles
        dram.begin_cycle()
        assert not dram.try_access(1, False)

    def test_charge_allows_overdraft(self):
        dram = make_dram()
        dram.begin_cycle()
        dram.charge(0, False)
        dram.charge(1, False)  # no budget left, still accounted
        assert dram.stats.total_words == 2

    def test_negative_address_rejected(self):
        dram = make_dram()
        dram.begin_cycle()
        with pytest.raises(Exception):
            dram.try_access(-1, False)
