"""Area model: paper §4.6 overhead targets and structural properties."""

import pytest

from repro.area import (
    DieModel,
    EnergyModel,
    SrfAreaModel,
    subarray_geometry,
)
from repro.config import isrf4_config
from repro.core.srf import SrfStats
from repro.errors import ConfigurationError
from repro.memory.dram import DramStats


class TestSubarrayGeometry:
    def test_4kb_subarray_is_128_by_256(self):
        assert subarray_geometry(32768) == (128, 256)

    def test_rows_times_columns_covers_bits(self):
        for bits in (1024, 8192, 32768, 65536):
            rows, cols = subarray_geometry(bits)
            assert rows * cols == bits

    def test_invalid_bits(self):
        with pytest.raises(ConfigurationError):
            subarray_geometry(0)


class TestOverheadTargets:
    """The paper's §4.6 numbers: 11% / 18% / 22% over sequential."""

    def setup_method(self):
        self.model = SrfAreaModel()
        self.report = self.model.overhead_report()

    def test_isrf1_near_11_percent(self):
        assert 0.09 <= self.report["ISRF1"] <= 0.13

    def test_isrf4_near_18_percent(self):
        assert 0.15 <= self.report["ISRF4"] <= 0.21

    def test_crosslane_near_22_percent(self):
        assert 0.19 <= self.report["ISRF4+crosslane"] <= 0.26

    def test_overheads_strictly_ordered(self):
        assert (self.report["ISRF1"] < self.report["ISRF4"]
                < self.report["ISRF4+crosslane"])

    def test_isrf4_extra_dominated_by_predecode_and_mux(self):
        # "Much of the extra overhead of ISRF4 over ISRF1 is in the
        # additional address busses and per-sub-array predecoders."
        isrf4 = self.model.isrf4().components
        added = (
            isrf4["subarray_predecoders"]
            + isrf4["indexed_column_mux"]
            + isrf4["subarray_address_wiring"]
        )
        delta = self.model.isrf4().total_um2 - self.model.isrf1().total_um2
        assert added == pytest.approx(delta)

    def test_crosslane_extra_dominated_by_address_network(self):
        # "much of the incremental overhead over ISRF4 associated with
        # the address network."
        xl = self.model.crosslane().components
        delta = self.model.crosslane().total_um2 - self.model.isrf4().total_um2
        assert xl["address_network"] > 0.5 * delta

    def test_cells_dominate_total_area(self):
        base = self.model.sequential()
        assert base.components["cells"] > 0.5 * base.total_um2

    def test_config_driven_geometry(self):
        model = SrfAreaModel(isrf4_config())
        assert model.banks == 8
        assert model.subarrays == 4
        assert model.rows == 128 and model.columns == 256


class TestDieModel:
    def test_die_overheads_match_1_5_to_3_percent(self):
        rows = {r.variant: r for r in DieModel().report()}
        assert 0.012 <= rows["ISRF1"].die_overhead <= 0.02
        assert 0.025 <= rows["ISRF4+crosslane"].die_overhead <= 0.035

    def test_cache_costs_an_order_more_die_area(self):
        die = DieModel()
        cache = die.cache_overhead()
        worst_indexed = max(r.die_overhead for r in die.report())
        assert cache.die_overhead > 4 * worst_indexed

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            DieModel(srf_die_fraction=0.0)

    def test_implied_die_area_plausible(self):
        # Imagine-class dies were a few hundred mm^2.
        assert 10 <= DieModel().die_area_mm2 <= 100


class TestEnergyModel:
    def test_indexed_word_is_4x_sequential(self):
        model = EnergyModel()
        assert model.indexed_word_nj == pytest.approx(
            4 * model.sequential_word_nj
        )

    def test_indexed_access_order_of_magnitude_below_dram(self):
        # ~0.1 nJ vs ~5 nJ (paper §4.4).
        model = EnergyModel()
        assert model.indexed_word_nj == pytest.approx(0.1, rel=0.3)
        assert model.dram_word_nj == pytest.approx(5.0)
        assert model.indexed_vs_dram_ratio >= 10

    def test_report_integrates_stats(self):
        model = EnergyModel()
        srf = SrfStats(sequential_words=1000, inlane_grants=500)
        dram = DramStats(read_words=100, write_words=50)
        report = model.report(srf, dram)
        assert report.srf_sequential_nj == pytest.approx(
            1000 * model.sequential_word_nj
        )
        assert report.srf_indexed_nj == pytest.approx(
            500 * model.indexed_word_nj
        )
        assert report.dram_nj == pytest.approx(150 * 5.0)
        assert report.total_nj == pytest.approx(
            report.srf_sequential_nj + report.srf_indexed_nj + report.dram_nj
        )

    def test_energy_argument_for_indexing(self):
        # Moving a Rijndael lookup from DRAM to the SRF should save
        # roughly 50x energy per lookup.
        model = EnergyModel()
        assert model.dram_word_nj / model.indexed_word_nj > 40
