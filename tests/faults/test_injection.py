"""End-to-end fault injection through the machine.

These run real benchmarks on faulted configurations and check the
properties the reliability study rests on: determinism, zero impact when
disabled, ECC transparency, and fast-forward equivalence under faults.
"""

from repro.apps import fft, igraph
from repro.config import base_config
from repro.config.presets import isrf4_config

#: A small but busy workload: every fault domain sees traffic.
FLIPS = dict(fault_seed=13, fault_srf_flips=12, fault_dram_flips=12,
             fault_horizon=2_000)


def run_fft(config):
    return fft.run(config, n=16, repeats=1)


class TestDisabledIsFree:
    def test_default_config_reports_no_faults(self):
        result = run_fft(isrf4_config())
        assert result.verified
        assert not result.stats.faults.any

    def test_zero_count_plan_keeps_stats_identical(self):
        # A seed alone (no events) must not perturb anything.
        clean = run_fft(isrf4_config())
        seeded = run_fft(isrf4_config().replace(fault_seed=99))
        assert clean.stats == seeded.stats


class TestDeterminism:
    def test_same_seed_same_stats(self):
        config = isrf4_config().replace(**FLIPS)
        first = run_fft(config)
        second = run_fft(config)
        assert first.stats == second.stats
        assert first.stats.faults.injected > 0

    def test_different_seed_different_strikes(self):
        a = run_fft(isrf4_config().replace(**FLIPS))
        b = run_fft(isrf4_config().replace(**dict(FLIPS, fault_seed=14)))
        assert a.stats.faults.injected > 0
        assert b.stats.faults.injected > 0


class TestProtectionOutcomes:
    def test_unprotected_strikes_corrupt_the_output(self):
        result = run_fft(isrf4_config().replace(**FLIPS))
        assert result.stats.faults.uncorrected > 0
        assert not result.verified

    def test_secded_makes_faulted_run_match_fault_free(self):
        clean = run_fft(isrf4_config())
        ecc = run_fft(isrf4_config().replace(
            srf_protection="secded", memory_protection="secded", **FLIPS
        ))
        assert ecc.verified
        assert ecc.stats.faults.corrected > 0
        assert ecc.stats.faults.uncorrected == 0
        # Correction is in-place and free: timing is bit-identical.
        assert ecc.stats.total_cycles == clean.stats.total_cycles

    def test_parity_detects_and_refetches(self):
        result = run_fft(isrf4_config().replace(
            srf_protection="parity", memory_protection="parity", **FLIPS
        ))
        assert result.verified
        faults = result.stats.faults
        assert faults.detected > 0
        assert faults.retries == faults.detected
        assert faults.uncorrected == 0


class TestFastForwardEquivalence:
    def test_flips_identical_across_modes(self):
        config = isrf4_config().replace(
            srf_protection="secded", memory_protection="secded", **FLIPS
        )
        fast = run_fft(config.replace(fast_forward=True))
        slow = run_fft(config.replace(fast_forward=False))
        assert fast.stats == slow.stats
        assert fast.stats.faults.injected > 0

    def test_drops_and_delays_identical_across_modes(self):
        # igraph's cross-lane indexed reads exercise the drop windows;
        # the delay events stretch its gather loads.
        config = isrf4_config().replace(
            fault_seed=21, fault_crossbar_drops=6, fault_memory_delays=4,
            fault_horizon=2_000,
        )
        fast = igraph.run(config.replace(fast_forward=True),
                          dataset="IG_SML")
        slow = igraph.run(config.replace(fast_forward=False),
                          dataset="IG_SML")
        assert fast.stats == slow.stats
        assert fast.stats.faults.dropped_grants > 0


class TestTransientFaults:
    def test_memory_delays_slow_the_program(self):
        clean = run_fft(base_config())
        delayed = run_fft(base_config().replace(
            fault_seed=21, fault_memory_delays=4, fault_horizon=2_000
        ))
        assert delayed.verified  # delays never corrupt data
        assert delayed.stats.faults.delayed_ops > 0
        assert delayed.stats.faults.delay_cycles > 0
        assert delayed.stats.total_cycles > clean.stats.total_cycles

    def test_crossbar_drops_are_counted_and_survived(self):
        # Only cross-lane indexed traffic routes through the address
        # network, so the drop windows need igraph's gather accesses.
        result = igraph.run(isrf4_config().replace(
            fault_seed=21, fault_crossbar_drops=6, fault_horizon=2_000
        ), dataset="IG_SML")
        assert result.verified  # dropped grants retry, never corrupt
        assert result.stats.faults.dropped_grants > 0
