"""Seeded fault plans: determinism, config wiring, env parsing."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FAULTS_ENV,
    FaultEvent,
    FaultPlan,
    fault_overrides_from_env,
)
from repro.config import base_config


class TestSeededPlans:
    def test_same_seed_same_plan(self):
        kwargs = dict(srf_flips=8, dram_flips=4, crossbar_drops=3,
                      memory_delays=2, horizon=10_000)
        a = FaultPlan.seeded(42, **kwargs)
        b = FaultPlan.seeded(42, **kwargs)
        assert a.srf_flips == b.srf_flips
        assert a.dram_flips == b.dram_flips
        assert a.crossbar_drops == b.crossbar_drops
        assert a.memory_delays == b.memory_delays

    def test_different_seed_different_plan(self):
        a = FaultPlan.seeded(1, srf_flips=16, horizon=10_000)
        b = FaultPlan.seeded(2, srf_flips=16, horizon=10_000)
        assert a.srf_flips != b.srf_flips

    def test_counts_and_domains(self):
        plan = FaultPlan.seeded(7, srf_flips=5, dram_flips=3,
                                crossbar_drops=2, memory_delays=1)
        assert len(plan.srf_flips) == 5
        assert len(plan.dram_flips) == 3
        assert len(plan.crossbar_drops) == 2
        assert len(plan.memory_delays) == 1
        assert len(plan) == 11

    def test_events_within_horizon_and_word(self):
        plan = FaultPlan.seeded(3, srf_flips=50, horizon=1_000)
        assert all(0 <= e.cycle < 1_000 for e in plan.srf_flips)
        assert all(0 <= e.bit < 32 for e in plan.srf_flips)

    def test_double_flip_fraction(self):
        plan = FaultPlan.seeded(9, srf_flips=200, horizon=1_000,
                                double_flip_fraction=0.5)
        doubles = sum(1 for e in plan.srf_flips if e.bits == 2)
        assert 0 < doubles < 200

    def test_drop_and_delay_durations_positive(self):
        plan = FaultPlan.seeded(5, crossbar_drops=20, memory_delays=20)
        assert all(e.duration >= 1 for e in plan.crossbar_drops)
        assert all(e.duration >= 1 for e in plan.memory_delays)

    def test_bad_horizon_rejected(self):
        with pytest.raises(ConfigurationError, match="horizon"):
            FaultPlan.seeded(1, srf_flips=1, horizon=0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultPlan([FaultEvent(cycle=0, kind="gamma_ray")])


class TestFromConfig:
    def test_default_config_has_no_plan(self):
        assert FaultPlan.from_config(base_config()) is None

    def test_config_counts_respected(self):
        config = base_config().replace(
            fault_seed=11, fault_srf_flips=6, fault_dram_flips=2,
            fault_horizon=5_000,
        )
        plan = FaultPlan.from_config(config)
        assert len(plan.srf_flips) == 6
        assert len(plan.dram_flips) == 2
        assert not plan.crossbar_drops and not plan.memory_delays

    def test_faults_require_seed(self):
        with pytest.raises(ConfigurationError, match="fault_seed"):
            base_config().replace(fault_srf_flips=4)

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            base_config().replace(fault_seed=1, fault_srf_flips=-1)

    def test_unknown_protection_rejected(self):
        with pytest.raises(ConfigurationError):
            base_config().replace(srf_protection="tmr")


class TestEnvOverrides:
    def test_unset_yields_empty(self):
        assert fault_overrides_from_env({}) == {}
        assert fault_overrides_from_env({FAULTS_ENV: "  "}) == {}

    def test_full_spec_parsed(self):
        overrides = fault_overrides_from_env({
            FAULTS_ENV: "seed=7, srf=24, dram=8, xbar=2, delay=3, "
                        "horizon=9000"
        })
        assert overrides == {
            "fault_seed": 7, "fault_srf_flips": 24,
            "fault_dram_flips": 8, "fault_crossbar_drops": 2,
            "fault_memory_delays": 3, "fault_horizon": 9000,
        }

    def test_protection_sets_both_domains(self):
        overrides = fault_overrides_from_env({FAULTS_ENV:
                                              "protection=secded"})
        assert overrides == {"srf_protection": "secded",
                             "memory_protection": "secded"}

    def test_single_domain_protection(self):
        overrides = fault_overrides_from_env({FAULTS_ENV:
                                              "srf_protection=parity"})
        assert overrides == {"srf_protection": "parity"}

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="bad REPRO_FAULTS"):
            fault_overrides_from_env({FAULTS_ENV: "cosmic=1"})

    def test_non_integer_rejected(self):
        with pytest.raises(ConfigurationError, match="needs an integer"):
            fault_overrides_from_env({FAULTS_ENV: "srf=lots"})

    def test_overrides_build_a_valid_config(self):
        overrides = fault_overrides_from_env({
            FAULTS_ENV: "seed=13,srf=12,protection=secded"
        })
        config = base_config().replace(**overrides)
        plan = FaultPlan.from_config(config)
        assert len(plan.srf_flips) == 12
        assert config.srf_protection == "secded"
