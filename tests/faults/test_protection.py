"""Word corruption and protection semantics, plus the fault schedules."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    BitFlipInjector,
    DelaySchedule,
    DropSchedule,
    FaultEvent,
    PROTECTION_CHECK_BITS,
    WordProtection,
    corrupt_word,
)
from repro.faults.plan import MEM_DELAY, SRF_FLIP, XBAR_DROP
from repro.machine.stats import FaultStats


def flip(cycle, bit=0, bits=1):
    return FaultEvent(cycle=cycle, kind=SRF_FLIP, bit=bit, bits=bits)


class TestCorruptWord:
    def test_int_flip_is_an_involution(self):
        assert corrupt_word(0, 5) == 32
        assert corrupt_word(corrupt_word(1234, 17), 17) == 1234

    def test_int_bit_wraps_to_word_width(self):
        assert corrupt_word(0, 32) == corrupt_word(0, 0)

    def test_bool_flips(self):
        assert corrupt_word(True, 3) is False
        assert corrupt_word(False, 0) is True

    def test_float_changes_value(self):
        assert corrupt_word(1.5, 20) != 1.5
        assert isinstance(corrupt_word(1.5, 20), float)

    def test_float_high_bit_is_large_perturbation(self):
        # Bit 30 sits in the single-precision exponent: the corruption
        # must be visible to any end-to-end verification tolerance.
        value = 3.25
        struck = corrupt_word(value, 30)
        assert abs(struck - value) > 1.0

    def test_float_outside_single_range_uses_double_image(self):
        huge = 1e300  # overflows float32
        struck = corrupt_word(huge, 4)
        assert struck != huge

    def test_opaque_payload_is_poisoned(self):
        struck = corrupt_word(("record", 1, 2), 0)
        assert struck[0] == "<corrupt>"


class TestWordProtection:
    def test_check_bits(self):
        assert PROTECTION_CHECK_BITS == {"none": 0, "parity": 1,
                                         "secded": 7}
        assert WordProtection("secded").check_bits == 7

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown protection"):
            WordProtection("tmr")

    def test_secded_corrects_single_bit(self):
        stats = FaultStats()
        value = WordProtection("secded").deliver(99, flip(0), stats)
        assert value == 99  # corrected in place
        assert (stats.injected, stats.corrected, stats.uncorrected) \
            == (1, 1, 0)

    def test_secded_detects_but_delivers_double_bit(self):
        stats = FaultStats()
        value = WordProtection("secded").deliver(0, flip(0, bit=3, bits=2),
                                                 stats)
        assert value == 0b11000  # bits 3 and 4 flipped
        assert (stats.detected, stats.uncorrected, stats.corrected) \
            == (1, 1, 0)

    def test_parity_detects_odd_and_retries(self):
        stats = FaultStats()
        value = WordProtection("parity").deliver(7, flip(0), stats)
        assert value == 7  # refetched
        assert (stats.detected, stats.retries, stats.uncorrected) \
            == (1, 1, 0)

    def test_parity_misses_even_flips(self):
        stats = FaultStats()
        value = WordProtection("parity").deliver(0, flip(0, bits=2), stats)
        assert value != 0
        assert (stats.detected, stats.uncorrected) == (0, 1)

    def test_none_is_silent_corruption(self):
        stats = FaultStats()
        value = WordProtection("none").deliver(0, flip(0, bit=9), stats)
        assert value == 512
        assert (stats.injected, stats.uncorrected, stats.detected) \
            == (1, 1, 0)


class TestBitFlipInjector:
    def test_strikes_arm_by_cycle_and_hit_next_read(self):
        injector = BitFlipInjector([flip(10, bit=0), flip(20, bit=1)],
                                   "none", FaultStats())
        injector.advance(9)
        assert not injector.armed
        assert injector.filter(5) == 5  # nothing armed yet
        injector.advance(10)
        assert injector.armed
        assert injector.filter(0) == 1  # first armed strike consumed
        assert injector.filter(0) == 0  # no second strike until cycle 20
        injector.advance(25)
        assert injector.filter(0) == 2
        assert injector.exhausted

    def test_batched_advance_matches_stepped(self):
        # The fast-forward path advances in one jump; armed strikes and
        # their order must match a cycle-by-cycle advance.
        events = [flip(c, bit=c % 32) for c in (3, 7, 7, 12)]
        jumped = BitFlipInjector(events, "none", FaultStats())
        stepped = BitFlipInjector(events, "none", FaultStats())
        jumped.advance(12)
        for cycle in range(13):
            stepped.advance(cycle)
        for _ in events:
            assert jumped.filter(0) == stepped.filter(0)


class TestDropSchedule:
    def test_window_covers_duration(self):
        sched = DropSchedule(
            [FaultEvent(cycle=5, kind=XBAR_DROP, duration=3)]
        )
        assert not sched.active(4)
        assert sched.active(5) and sched.active(7)
        assert not sched.active(8)

    def test_overlapping_windows_extend(self):
        sched = DropSchedule([
            FaultEvent(cycle=5, kind=XBAR_DROP, duration=4),
            FaultEvent(cycle=7, kind=XBAR_DROP, duration=10),
        ])
        assert sched.active(8) and sched.active(16)
        assert not sched.active(17)

    def test_skipped_cycles_do_not_shift_windows(self):
        sched = DropSchedule(
            [FaultEvent(cycle=5, kind=XBAR_DROP, duration=2)]
        )
        # Jump straight past the window, as fast-forward would.
        assert not sched.active(100)


class TestDelaySchedule:
    def test_due_events_charge_latency_once(self):
        stats = FaultStats()
        sched = DelaySchedule([
            FaultEvent(cycle=10, kind=MEM_DELAY, duration=6),
            FaultEvent(cycle=12, kind=MEM_DELAY, duration=4),
        ], stats)
        assert sched.extra_latency(5) == 0
        assert sched.extra_latency(15) == 10  # both consumed together
        assert sched.extra_latency(16) == 0
        assert stats.delayed_ops == 1
        assert stats.delay_cycles == 10
