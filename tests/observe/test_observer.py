"""Observer construction, env overlay, and the collect() hook."""

import pytest

from repro.config.presets import base_config, isrf4_config
from repro.errors import ConfigurationError
from repro.observe import (
    Collection,
    Observer,
    Tracer,
    TRACE_ENV,
    collect,
    trace_overrides_from_env,
)


class TestEnvOverlay:
    def test_unset_or_empty_is_inert(self):
        assert trace_overrides_from_env({}) == {}
        assert trace_overrides_from_env({TRACE_ENV: "  "}) == {}

    @pytest.mark.parametrize("bare", ["1", "true", "ON", "Yes"])
    def test_bare_values_enable_tracing_only(self, bare):
        assert trace_overrides_from_env({TRACE_ENV: bare}) == {
            "trace": True
        }

    def test_full_spec_maps_to_config_fields(self):
        spec = "trace=1,metrics=2,profile=64,buffer=4096,path=out.json"
        assert trace_overrides_from_env({TRACE_ENV: spec}) == {
            "trace": True,
            "metrics_level": 2,
            "profile_sample_period": 64,
            "trace_buffer_events": 4096,
            "trace_path": "out.json",
        }

    @pytest.mark.parametrize("bad", ["bogus", "trace", "trace=",
                                     "metrics=two", "nope=1"])
    def test_bad_entries_raise(self, bad):
        with pytest.raises(ConfigurationError):
            trace_overrides_from_env({TRACE_ENV: bad})

    def test_presets_pick_up_the_overlay(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV, "trace=1,metrics=1")
        config = base_config()
        assert config.trace and config.metrics_level == 1
        # Explicit overrides still win over the environment.
        assert base_config(metrics_level=2).metrics_level == 2

    def test_bad_overlay_fails_preset_construction(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV, "garbage")
        with pytest.raises(ConfigurationError):
            base_config()


class TestObserverFromConfig:
    def test_default_config_builds_nothing(self):
        assert Observer.from_config(base_config()) is None

    def test_each_knob_enables_its_facility(self):
        traced = Observer.from_config(base_config(trace=True))
        assert traced.tracer is not None
        assert traced.metrics is None and traced.profiler is None
        assert traced.enabled and traced.machine == "Base"

        metered = Observer.from_config(base_config(metrics_level=2))
        assert metered.metrics is not None and metered.tracer is None

        profiled = Observer.from_config(
            base_config(profile_sample_period=16)
        )
        assert profiled.profiler is not None

    def test_profiler_reports_through_metrics(self):
        observer = Observer.from_config(
            base_config(metrics_level=1, profile_sample_period=4)
        )
        observer.profiler.sample_window(0, 8, "kernel")
        out = observer.metrics.collect()
        assert out["profile.kernel.samples"]["value"] == 2
        assert out["profile.sample_period"]["value"] == 4

    def test_tracer_inherits_buffer_and_clock(self):
        config = isrf4_config(trace=True, trace_buffer_events=128)
        observer = Observer.from_config(config)
        assert observer.tracer.capacity == 128
        assert observer.tracer.clock_hz == config.clock_hz


class TestCollect:
    def test_processors_built_inside_collect_are_captured(self):
        from repro.machine.processor import StreamProcessor

        with collect() as collected:
            StreamProcessor(base_config(trace=True))
            StreamProcessor(isrf4_config(trace=True))
        assert [o.machine for o in collected.observers] == [
            "Base", "ISRF4"
        ]
        # Observers created after the block are no longer captured.
        StreamProcessor(base_config(trace=True))
        assert len(collected.observers) == 2

    def test_untraced_processors_register_nothing(self):
        from repro.machine.processor import StreamProcessor

        with collect() as collected:
            StreamProcessor(base_config())
        assert collected.observers == []

    def test_duplicate_machine_labels_are_disambiguated(self):
        collection = Collection()
        for _ in range(3):
            collection.observers.append(
                Observer(tracer=Tracer(4), machine="Base")
            )
        assert list(collection.tracers()) == ["Base", "Base#2", "Base#3"]
