"""The hierarchical metrics registry: kinds, providers, collection."""

import pytest

from repro.observe import Counter, Gauge, Histogram, MetricsRegistry


class TestKinds:
    def test_counter_accumulates(self):
        counter = Counter("srf.grants")
        counter.add()
        counter.add(4)
        assert counter.snapshot() == {"kind": "counter", "value": 5}

    def test_gauge_last_write_wins(self):
        gauge = Gauge("dram.row_hit_rate")
        gauge.set(0.25)
        gauge.set(0.75)
        assert gauge.snapshot() == {"kind": "gauge", "value": 0.75}

    def test_histogram_buckets_and_overflow(self):
        hist = Histogram("depth", bounds=(0, 2, 4))
        for value in (0, 1, 2, 3, 4, 99):
            hist.record(value)
        snap = hist.snapshot()
        assert snap["buckets"] == [1, 2, 2, 1]  # <=0, <=2, <=4, overflow
        assert snap["count"] == 6
        assert snap["mean"] == pytest.approx(109 / 6)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(4, 2))


class TestRegistry:
    def test_create_or_get_returns_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("srf.grants")
        assert registry.counter("srf.grants") is first
        assert "srf.grants" in registry

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="different kind"):
            registry.gauge("x")

    def test_level_zero_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry(level=0)

    def test_collect_snapshots_metrics_and_providers(self):
        registry = MetricsRegistry(level=2)
        registry.counter("live").add(3)
        registry.add_provider(lambda: {"lazy": 1.5})
        out = registry.collect()
        assert out["live"] == {"kind": "counter", "value": 3}
        assert out["lazy"] == {"kind": "gauge", "value": 1.5}

    def test_live_metric_wins_over_provider_on_collision(self):
        registry = MetricsRegistry()
        registry.counter("name").add(9)
        registry.add_provider(lambda: {"name": -1})
        assert registry.collect()["name"]["value"] == 9

    def test_providers_are_lazy(self):
        registry = MetricsRegistry()
        reads = []
        registry.add_provider(lambda: reads.append(1) or {"n": len(reads)})
        assert reads == []
        assert registry.collect()["n"]["value"] == 1
        assert registry.collect()["n"]["value"] == 2
