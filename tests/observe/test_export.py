"""Chrome trace export: structure, schema validation, atomic writes."""

import json
import os

import pytest

from repro.observe import (
    STAGING_SUFFIX,
    Tracer,
    chrome_trace,
    cleanup_orphan_traces,
    staging_path,
    validate_chrome_trace,
    write_trace,
)


def _sample_tracer() -> Tracer:
    tracer = Tracer(64, clock_hz=1e9)
    tracer.begin("processor", "program:p", 0)
    tracer.begin("processor", "kernel:k", 10)
    tracer.end("processor", "kernel:k", 50)
    tracer.end("processor", "program:p", 60)
    tracer.async_begin("memory", "load", 5, event_id=1)
    tracer.async_end("memory", "load", 45, event_id=1)
    return tracer


class TestChromeTrace:
    def test_machines_become_processes_components_threads(self):
        payload = chrome_trace({"Base": _sample_tracer(),
                                "ISRF4": _sample_tracer()})
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        names = {(e["name"], e["args"]["name"]) for e in meta}
        assert ("process_name", "Base") in names
        assert ("process_name", "ISRF4") in names
        assert ("thread_name", "processor") in names
        assert ("thread_name", "memory") in names
        pids = {e["pid"] for e in payload["traceEvents"]}
        assert pids == {1, 2}

    def test_cycle_timestamps_become_microseconds(self):
        tracer = Tracer(8, clock_hz=1e9)  # 1 cycle = 1 ns = 1e-3 us
        tracer.instant("srf", "x", 2000)
        payload = chrome_trace({"Base": tracer})
        event = [e for e in payload["traceEvents"] if e["name"] == "x"][0]
        assert event["ts"] == pytest.approx(2.0)

    def test_async_events_carry_string_ids(self):
        payload = chrome_trace({"Base": _sample_tracer()})
        async_events = [e for e in payload["traceEvents"]
                        if e["ph"] in ("b", "e")]
        assert all(e["id"] == "1" for e in async_events)

    def test_payload_json_serialisable_and_valid(self):
        payload = chrome_trace({"Base": _sample_tracer()})
        counts = validate_chrome_trace(json.loads(json.dumps(payload)))
        assert counts["B"] == 2 and counts["E"] == 2
        assert counts["b"] == 1 and counts["e"] == 1

    def test_rejects_non_tracer(self):
        with pytest.raises(TypeError):
            chrome_trace({"Base": object()})


class TestValidation:
    def _base_event(self, **overrides):
        event = {"name": "x", "ph": "i", "pid": 1, "tid": 1, "ts": 0.0}
        event.update(overrides)
        return {"traceEvents": [event]}

    def test_missing_required_key(self):
        bad = self._base_event()
        del bad["traceEvents"][0]["ts"]
        with pytest.raises(ValueError, match="missing required key"):
            validate_chrome_trace(bad)

    def test_unknown_phase(self):
        with pytest.raises(ValueError, match="unknown phase"):
            validate_chrome_trace(self._base_event(ph="Z"))

    def test_negative_timestamp(self):
        with pytest.raises(ValueError, match="ts"):
            validate_chrome_trace(self._base_event(ts=-1.0))

    def test_unbalanced_begin(self):
        with pytest.raises(ValueError, match="never closed"):
            validate_chrome_trace(self._base_event(ph="B"))

    def test_end_without_begin(self):
        with pytest.raises(ValueError, match="no open span"):
            validate_chrome_trace(self._base_event(ph="E"))

    def test_improperly_nested_spans(self):
        events = [
            {"name": "outer", "ph": "B", "pid": 1, "tid": 1, "ts": 0},
            {"name": "inner", "ph": "B", "pid": 1, "tid": 1, "ts": 1},
            {"name": "outer", "ph": "E", "pid": 1, "tid": 1, "ts": 2},
        ]
        with pytest.raises(ValueError, match="improper nesting"):
            validate_chrome_trace({"traceEvents": events})

    def test_async_end_without_begin(self):
        with pytest.raises(ValueError, match="async end without begin"):
            validate_chrome_trace(self._base_event(ph="e", id="1"))

    def test_async_begin_never_ended(self):
        with pytest.raises(ValueError, match="never ended"):
            validate_chrome_trace(self._base_event(ph="b", id="1"))

    def test_counter_needs_args(self):
        with pytest.raises(ValueError, match="counter"):
            validate_chrome_trace(self._base_event(ph="C"))

    def test_not_an_object(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([1, 2])


class TestAtomicWrite:
    def test_staging_path_embeds_experiment(self, tmp_path):
        path = staging_path(
            str(tmp_path / "out.json"), experiment="trace",
            staging_dir=str(tmp_path),
        )
        assert path.endswith(f".trace{STAGING_SUFFIX}")
        assert os.path.dirname(path) == str(tmp_path)

    def test_write_leaves_no_staging_file(self, tmp_path):
        target = tmp_path / "out.json"
        write_trace({"traceEvents": []}, str(target), experiment="trace",
                    staging_dir=str(tmp_path))
        assert json.loads(target.read_text()) == {"traceEvents": []}
        leftovers = [f for f in os.listdir(tmp_path)
                     if f.endswith(STAGING_SUFFIX)]
        assert leftovers == []

    def test_failed_write_does_not_create_target(self, tmp_path):
        target = tmp_path / "out.json"
        with pytest.raises(TypeError):
            write_trace({"bad": object()}, str(target), experiment="trace",
                        staging_dir=str(tmp_path))
        assert not target.exists()
        leftovers = [f for f in os.listdir(tmp_path)
                     if f.endswith(STAGING_SUFFIX)]
        assert leftovers == []


class TestOrphanCleanup:
    def test_removes_only_named_experiments_leftovers(self, tmp_path):
        mine = tmp_path / f"out.json.trace{STAGING_SUFFIX}"
        other = tmp_path / f"out.json.fig11{STAGING_SUFFIX}"
        unrelated = tmp_path / "result.pkl"
        for path in (mine, other, unrelated):
            path.write_text("x")
        removed = cleanup_orphan_traces(str(tmp_path), experiment="trace")
        assert removed == 1
        assert not mine.exists()
        assert other.exists() and unrelated.exists()

    def test_without_experiment_removes_all_staging_files(self, tmp_path):
        for name in (f"a.trace{STAGING_SUFFIX}", f"b.fig11{STAGING_SUFFIX}"):
            (tmp_path / name).write_text("x")
        (tmp_path / "keep.json").write_text("x")
        assert cleanup_orphan_traces(str(tmp_path)) == 2
        assert os.listdir(tmp_path) == ["keep.json"]

    def test_missing_directory_is_harmless(self, tmp_path):
        assert cleanup_orphan_traces(str(tmp_path / "nope")) == 0
