"""The structured event tracer: ring buffer, counts, phases."""

import pytest

from repro.observe import (
    PHASE_ASYNC_BEGIN,
    PHASE_ASYNC_END,
    PHASE_BEGIN,
    PHASE_COUNTER,
    PHASE_END,
    PHASE_INSTANT,
    Tracer,
)


class TestEmission:
    def test_span_events_carry_phase_and_cycle(self):
        tracer = Tracer(16)
        tracer.begin("srf", "fill", 3, words=32)
        tracer.end("srf", "fill", 7)
        events = tracer.events
        assert [e.phase for e in events] == [PHASE_BEGIN, PHASE_END]
        assert [e.cycle for e in events] == [3, 7]
        assert events[0].args == {"words": 32}
        assert events[1].args is None

    def test_instant_and_counter(self):
        tracer = Tracer(16)
        tracer.instant("srf", "open:in", 0, length_words=64)
        tracer.counter("srf", "occupancy", 5, {"words": 12})
        assert tracer.events[0].phase == PHASE_INSTANT
        assert tracer.events[1].phase == PHASE_COUNTER
        assert tracer.events[1].args == {"words": 12}

    def test_async_events_pair_by_id(self):
        tracer = Tracer(16)
        tracer.async_begin("memory", "load", 0, event_id=7)
        tracer.async_begin("memory", "store", 2, event_id=8)
        tracer.async_end("memory", "load", 9, event_id=7)
        phases = [e.phase for e in tracer.events]
        assert phases == [PHASE_ASYNC_BEGIN, PHASE_ASYNC_BEGIN,
                          PHASE_ASYNC_END]
        assert [e.event_id for e in tracer.events] == [7, 8, 7]

    def test_components_in_first_emission_order(self):
        tracer = Tracer(16)
        tracer.instant("memory", "a", 0)
        tracer.instant("srf", "b", 0)
        tracer.instant("memory", "c", 1)
        assert tracer.components() == ["memory", "srf"]


class TestRingBuffer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(0)

    def test_oldest_events_drop_when_full(self):
        tracer = Tracer(3)
        for cycle in range(5):
            tracer.instant("srf", f"e{cycle}", cycle)
        assert len(tracer) == 3
        assert tracer.dropped_events == 2
        assert [e.name for e in tracer.events] == ["e2", "e3", "e4"]

    def test_counts_include_dropped_events(self):
        tracer = Tracer(2)
        for cycle in range(6):
            tracer.instant("srf", "e", cycle)
        assert tracer.count("srf", PHASE_INSTANT) == 6
        assert tracer.count("srf", PHASE_BEGIN) == 0
        assert tracer.count("memory", PHASE_INSTANT) == 0
