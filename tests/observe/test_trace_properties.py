"""Property-based trace invariants, on synthetic and real machine runs.

The synthetic half drives the tracer/profiler/exporter with
hypothesis-generated event streams; the real half runs FFT 2D under
full observability once per preset and checks the invariants the
exporter and metrics registry promise each other: per-track timestamps
monotonic, begin/end balanced, event counts reconciling with the
metrics registry, and the exported JSON passing Chrome trace schema
validation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import observe
from repro.apps import fft
from repro.config.presets import base_config, isrf4_config
from repro.observe import (
    PHASE_ASYNC_BEGIN,
    PHASE_ASYNC_END,
    PHASE_BEGIN,
    PHASE_END,
    CycleProfiler,
    Tracer,
    chrome_trace,
    validate_chrome_trace,
)

# ----------------------------------------------------------------------
# Synthetic streams


def _emit_tree(tracer, component, tree, cycle, depth):
    """Emit a nested span per tree node; return the cycle after closing."""
    name = f"span.d{depth}"
    tracer.begin(component, name, cycle)
    cycle += 1
    for child in tree:
        cycle = _emit_tree(tracer, component, child, cycle, depth + 1)
    tracer.end(component, name, cycle)
    return cycle + 1


span_trees = st.recursive(
    st.just([]), lambda children: st.lists(children, max_size=3),
    max_leaves=10,
)


class TestSyntheticStreams:
    @given(trees=st.lists(span_trees, min_size=1, max_size=4),
           components=st.integers(min_value=1, max_value=3))
    @settings(max_examples=50, deadline=None)
    def test_balanced_spans_always_validate(self, trees, components):
        tracer = Tracer(1 << 12)
        for comp in range(components):
            cycle = 0
            for tree in trees:
                cycle = _emit_tree(tracer, f"comp{comp}", [tree], cycle, 0)
        payload = chrome_trace({"M": tracer})
        counts = validate_chrome_trace(payload)
        assert counts[PHASE_BEGIN] == counts[PHASE_END]
        emitted_begins = sum(
            count for (_, phase), count in tracer.counts.items()
            if phase == PHASE_BEGIN
        )
        assert counts[PHASE_BEGIN] == emitted_begins

    @given(ids=st.lists(st.integers(min_value=0, max_value=99),
                        unique=True, min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_paired_async_events_always_validate(self, ids):
        tracer = Tracer(1 << 10)
        for position, event_id in enumerate(ids):
            tracer.async_begin("memory", f"op{event_id}", position,
                              event_id=event_id)
        for position, event_id in enumerate(ids):
            tracer.async_end("memory", f"op{event_id}", len(ids) + position,
                             event_id=event_id)
        counts = validate_chrome_trace(chrome_trace({"M": tracer}))
        assert counts[PHASE_ASYNC_BEGIN] == len(ids)
        assert counts[PHASE_ASYNC_END] == len(ids)


class TestProfilerChunkingInvariance:
    @given(period=st.integers(min_value=1, max_value=17),
           start=st.integers(min_value=0, max_value=50),
           chunks=st.lists(st.integers(min_value=1, max_value=40),
                           min_size=1, max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_partitioning_a_window_never_changes_samples(
            self, period, start, chunks):
        bulk = CycleProfiler(period)
        bulk.sample_window(start, sum(chunks), "kernel")
        chunked = CycleProfiler(period)
        cycle = start
        for length in chunks:
            chunked.sample_window(cycle, length, "kernel")
            cycle += length
        assert chunked.samples == bulk.samples
        assert chunked.attributed_cycles() == bulk.attributed_cycles()

    @given(period=st.integers(min_value=1, max_value=9),
           cycles=st.integers(min_value=1, max_value=200))
    @settings(max_examples=50, deadline=None)
    def test_per_cycle_sampling_matches_bulk_window(self, period, cycles):
        bulk = CycleProfiler(period)
        bulk.sample_window(0, cycles, "kernel")
        stepped = CycleProfiler(period)
        for cycle in range(cycles):
            stepped.sample(cycle, "kernel")
        assert stepped.samples == bulk.samples

    @given(period=st.integers(min_value=1, max_value=9),
           segments=st.lists(
               st.tuples(st.integers(min_value=1, max_value=30),
                         st.sampled_from(["kernel", "memory_stall",
                                          "idle"])),
               min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_total_samples_independent_of_category_boundaries(
            self, period, segments):
        total_cycles = sum(length for length, _ in segments)
        bulk = CycleProfiler(period)
        bulk.sample_window(0, total_cycles, "all")
        mixed = CycleProfiler(period)
        cycle = 0
        for length, category in segments:
            mixed.sample_window(cycle, length, category)
            cycle += length
        assert mixed.total_samples == bulk.total_samples


# ----------------------------------------------------------------------
# Real machine runs


@pytest.fixture(scope="module")
def traced_runs():
    """FFT 2D under full observability on Base and ISRF4, run once."""
    observability = dict(trace=True, metrics_level=2,
                         profile_sample_period=32)
    runs = {}
    with observe.collect() as collected:
        for factory in (base_config, isrf4_config):
            config = factory(**observability)
            result = fft.run(config, n=16)
            result.require_verified()
            runs[config.name] = result
    return runs, collected


@pytest.fixture(scope="module")
def tracers(traced_runs):
    _, collected = traced_runs
    return collected.tracers()


class TestRealRunInvariants:
    def test_both_machines_collected(self, tracers):
        assert set(tracers) == {"Base", "ISRF4"}
        assert all(len(tracer) > 0 for tracer in tracers.values())

    def test_timestamps_monotonic_per_component(self, tracers):
        for label, tracer in tracers.items():
            last = {}
            for event in tracer.events:
                previous = last.get(event.component)
                assert previous is None or event.cycle >= previous, (
                    f"{label}/{event.component}: cycle {event.cycle} after "
                    f"{previous}"
                )
                last[event.component] = event.cycle

    def test_begin_end_balanced_per_component(self, tracers):
        for tracer in tracers.values():
            for component in tracer.components():
                assert (tracer.count(component, PHASE_BEGIN)
                        == tracer.count(component, PHASE_END))
                assert (tracer.count(component, PHASE_ASYNC_BEGIN)
                        == tracer.count(component, PHASE_ASYNC_END))

    def test_memory_events_reconcile_with_metrics(self, traced_runs):
        runs, collected = traced_runs
        tracers = collected.tracers()
        for label, result in runs.items():
            tracer = tracers[label]
            issued = result.stats.metrics["memory.ops_issued"]["value"]
            assert tracer.count("memory", PHASE_ASYNC_BEGIN) == issued
            assert tracer.count("memory", PHASE_ASYNC_END) == issued
            completed = result.stats.metrics["memory.ops_completed"]["value"]
            assert issued == completed

    def test_kernel_spans_reconcile_with_kernel_runs(self, traced_runs):
        runs, collected = traced_runs
        tracers = collected.tracers()
        for label, result in runs.items():
            kernel_begins = sum(
                1 for event in tracers[label].events
                if event.component == "processor"
                and event.phase == PHASE_BEGIN
                and event.name.startswith("kernel:")
            )
            assert kernel_begins == len(result.stats.kernel_runs)

    def test_no_events_dropped_at_default_capacity(self, tracers):
        assert all(t.dropped_events == 0 for t in tracers.values())

    def test_profile_accounts_for_every_cycle(self, traced_runs):
        runs, _ = traced_runs
        for result in runs.values():
            metrics = result.stats.metrics
            period = metrics["profile.sample_period"]["value"]
            sampled = sum(
                entry["value"] for name, entry in metrics.items()
                if name.startswith("profile.") and name.endswith(".samples")
            )
            # Systematic sampling covers the run to within one period.
            assert abs(sampled * period - result.cycles) < period

    def test_export_validates_against_chrome_schema(self, tracers):
        payload = chrome_trace(tracers)
        counts = validate_chrome_trace(payload)
        assert counts[PHASE_BEGIN] > 0
        assert counts[PHASE_BEGIN] == counts[PHASE_END]
