"""Cross-lane address and data-return networks."""

import pytest

from repro.errors import SrfError
from repro.interconnect import AddressNetwork, ReturnNetwork


class TestAddressNetwork:
    def test_source_bandwidth_limits_injection(self):
        net = AddressNetwork(lanes=4, ports_per_bank=4, source_bandwidth=1)
        net.begin_cycle()
        assert net.try_route(0, 1)
        assert not net.try_route(0, 2)  # same source, second index
        assert net.try_route(1, 2)

    def test_bank_ports_limit_acceptance(self):
        net = AddressNetwork(lanes=4, ports_per_bank=1, source_bandwidth=1)
        net.begin_cycle()
        assert net.try_route(0, 3)
        assert not net.try_route(1, 3)  # bank 3 port exhausted
        assert net.try_route(1, 2)

    def test_budgets_reset_each_cycle(self):
        net = AddressNetwork(lanes=2, ports_per_bank=1)
        net.begin_cycle()
        assert net.try_route(0, 0)
        net.begin_cycle()
        assert net.try_route(0, 0)

    def test_invalid_construction(self):
        with pytest.raises(SrfError):
            AddressNetwork(lanes=0)
        with pytest.raises(SrfError):
            AddressNetwork(lanes=2, ports_per_bank=0)


class TestReturnNetwork:
    def collect(self):
        received = []
        return received, lambda ticket, value: received.append((ticket, value))

    def test_delivery_invokes_fill(self):
        net = ReturnNetwork(lanes=2)
        received, fill = self.collect()
        net.enqueue(bank=0, destination_lane=1, ticket=7, value="v",
                    stream_id=0, fill=fill)
        net.tick(comm_busy=False)
        assert received == [(7, "v")]
        assert net.pending() == 0

    def test_destination_slot_cap(self):
        net = ReturnNetwork(lanes=2, slots_per_destination=2)
        received, fill = self.collect()
        for ticket in range(3):
            net.enqueue(0, 1, ticket, ticket, 0, fill)
        net.tick(comm_busy=False)
        assert len(received) == 2
        net.tick(comm_busy=False)
        assert len(received) == 3

    def test_comm_cycles_preempt_returns(self):
        net = ReturnNetwork(lanes=2, slots_per_destination=2)
        received, fill = self.collect()
        for ticket in range(2):
            net.enqueue(0, 0, ticket, ticket, 0, fill)
        net.tick(comm_busy=True)
        assert received == []  # explicit comms have absolute priority
        net.tick(comm_busy=False)
        assert len(received) == 2

    def test_bank_queue_backpressure(self):
        net = ReturnNetwork(lanes=2, bank_queue_depth=2)
        _, fill = self.collect()
        net.enqueue(0, 0, 0, 0, 0, fill)
        net.enqueue(0, 0, 1, 1, 0, fill)
        assert not net.bank_has_space(0)
        assert net.bank_has_space(1)
        with pytest.raises(SrfError):
            net.enqueue(0, 0, 2, 2, 0, fill)

    def test_fairness_across_banks(self):
        net = ReturnNetwork(lanes=4, slots_per_destination=1)
        received, fill = self.collect()
        net.enqueue(0, 2, 0, "a", 0, fill)
        net.enqueue(1, 2, 1, "b", 0, fill)
        net.tick(comm_busy=False)
        assert len(received) == 1  # one slot at destination 2
        net.tick(comm_busy=False)
        assert len(received) == 2
