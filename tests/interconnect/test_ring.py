"""Sparse (ring) address network — the §7 future-work evaluation."""

import pytest

from repro.errors import SrfError
from repro.interconnect import AddressNetwork, RingAddressNetwork


class TestRingPaths:
    def make(self, lanes=8, **kw):
        return RingAddressNetwork(lanes=lanes, **kw)

    def test_shortest_arc_chosen(self):
        net = self.make()
        assert len(net._path(0, 1)) == 1
        assert len(net._path(0, 7)) == 1   # wraps backwards
        assert len(net._path(0, 4)) == 4   # diameter
        assert len(net._path(3, 3)) == 0   # local

    def test_local_access_uses_no_links(self):
        net = self.make()
        net.begin_cycle()
        assert net.try_route(2, 2)

    def test_link_contention_blocks_overlapping_paths(self):
        net = self.make(link_bandwidth=1)
        net.begin_cycle()
        # 0 -> 2 uses links (0,+1) and (1,+1).
        assert net.try_route(0, 2)
        # 1 -> 3 needs (1,+1) and (2,+1): (1,+1) is taken.
        assert not net.try_route(1, 3)
        # Opposite direction is free.
        assert net.try_route(3, 1)

    def test_higher_link_bandwidth_relieves_contention(self):
        net = self.make(link_bandwidth=2, ports_per_bank=2,
                        source_bandwidth=2)
        net.begin_cycle()
        assert net.try_route(0, 2)
        assert net.try_route(1, 3)

    def test_budgets_reset_each_cycle(self):
        net = self.make()
        net.begin_cycle()
        assert net.try_route(0, 2)
        net.begin_cycle()
        assert net.try_route(1, 3)

    def test_invalid_link_bandwidth(self):
        with pytest.raises(SrfError):
            RingAddressNetwork(lanes=4, link_bandwidth=0)

    def test_ring_never_beats_crossbar(self):
        # Property: any request pattern the ring admits in one cycle,
        # the crossbar admits too.
        import random

        rng = random.Random(9)
        for _trial in range(50):
            requests = [(rng.randrange(8), rng.randrange(8))
                        for _ in range(6)]
            ring = RingAddressNetwork(8, ports_per_bank=2,
                                      source_bandwidth=2)
            xbar = AddressNetwork(8, ports_per_bank=2, source_bandwidth=2)
            ring.begin_cycle()
            xbar.begin_cycle()
            ring_granted = sum(ring.try_route(s, b) for s, b in requests)
            xbar_granted = sum(xbar.try_route(s, b) for s, b in requests)
            assert ring_granted <= xbar_granted
