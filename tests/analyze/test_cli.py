"""The ``python -m repro.analyze`` CLI and the harness ``check`` hook."""

import subprocess
import sys

import pytest

from repro.analyze.__main__ import main
from repro.harness.runner import EXPERIMENTS


class TestMain:
    def test_single_app_single_config_is_clean(self, capsys):
        assert main(["--app", "Sort", "--config", "ISRF4"]) == 0
        out = capsys.readouterr().out
        assert "Sort" in out
        assert "static analysis clean" in out

    def test_verbose_prints_notes(self, capsys):
        assert main(["--app", "Rijndael", "--config", "ISRF4", "-v"]) == 0
        out = capsys.readouterr().out
        assert "bounds-summary" in out

    def test_unknown_config_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--config", "NoSuchMachine"])
        assert excinfo.value.code == 2

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["--app", "NoSuchApp"])


def test_module_entry_point_runs():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analyze",
         "--app", "FFT 2D", "--config", "Base"],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert "static analysis clean" in proc.stdout


def test_check_experiment_is_registered():
    assert "check" in EXPERIMENTS
