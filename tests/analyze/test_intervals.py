"""Unit tests for the index-analysis abstract domains."""

from repro.analyze import AffineForm, IndexEvaluator, Interval
from repro.kernel.builder import KernelBuilder


class TestInterval:
    def test_const_and_within(self):
        assert Interval.const(3).within(0, 7)
        assert not Interval.const(8).within(0, 7)
        assert not Interval.top().within(0, 7)

    def test_join_hulls(self):
        assert Interval(0, 3).join(Interval(5, 9)) == Interval(0, 9)
        assert Interval(0, 3).join(Interval.top()) == Interval.top()

    def test_arithmetic(self):
        assert Interval(1, 2).add(Interval(10, 20)) == Interval(11, 22)
        assert Interval(1, 2).sub(Interval(10, 20)) == Interval(-19, -8)
        assert Interval(-2, 3).mul(Interval(4, 5)) == Interval(-10, 15)

    def test_mul_handles_unbounded_times_zero(self):
        # inf * 0 must not poison the hull with NaN.
        assert Interval.top().mul(Interval(0, 0)) == Interval(0, 0)

    def test_mod_positive_constant_divisor(self):
        assert Interval(0, 100).mod(Interval.const(8)) == Interval(0, 7)
        assert Interval.top().mod(Interval.const(8)) == Interval(0, 7)
        # Already in range: mod is the identity (object-preserving).
        inside = Interval(2, 5)
        assert inside.mod(Interval.const(8)) is inside

    def test_mod_unknown_divisor_is_top(self):
        assert Interval(0, 10).mod(Interval(1, 8)) == Interval.top()
        assert Interval(0, 10).mod(Interval.const(0)) == Interval.top()

    def test_xor_power_of_two_ceiling(self):
        assert Interval(0, 5).xor(Interval(0, 5)) == Interval(0, 7)
        assert Interval(-1, 5).xor(Interval(0, 5)) == Interval.top()


class TestAffineForm:
    def test_to_interval_is_corner_tight(self):
        form = AffineForm(10, c_iter=2, c_lane=-1)
        # iter in [0, 4], lane in [0, 7]
        assert form.to_interval(5, 8) == Interval(3, 18)

    def test_zero_trip_count_collapses(self):
        form = AffineForm(10, c_iter=2)
        assert form.to_interval(0, 8) == Interval(10, 10)

    def test_algebra(self):
        a = AffineForm(1, c_iter=2)
        b = AffineForm(3, c_lane=4)
        assert a.add(b) == AffineForm(4, c_iter=2, c_lane=4)
        assert a.sub(b) == AffineForm(-2, c_iter=2, c_lane=-4)
        assert a.scale(3) == AffineForm(3, c_iter=6)


def _evaluate(build, iterations=16, lanes=8):
    """Build a kernel with ``build(b)`` returning the op under test."""
    b = KernelBuilder("probe")
    dst = b.ostream("dst")
    op = build(b)
    b.write(dst, op)
    kernel = b.build()
    return IndexEvaluator(kernel, iterations, lanes).value_of(op)


class TestIndexEvaluator:
    def test_constants_are_exact(self):
        value = _evaluate(lambda b: b.const(5))
        assert value.is_exact
        assert value.interval == Interval(5, 5)

    def test_laneid_spans_lanes(self):
        value = _evaluate(lambda b: b.laneid(), lanes=8)
        assert value.is_exact
        assert value.interval == Interval(0, 7)

    def test_induction_carry_is_affine(self):
        def build(b):
            it = b.carry(0, "it")
            b.update(it, b.add(it, b.const(1), name="next"))
            return it
        value = _evaluate(build, iterations=10)
        assert value.is_exact
        assert value.affine == AffineForm(0, c_iter=1)
        assert value.interval == Interval(0, 9)

    def test_downward_induction(self):
        def build(b):
            it = b.carry(9, "it")
            b.update(it, b.sub(it, b.const(1), name="next"))
            return it
        value = _evaluate(build, iterations=10)
        assert value.affine == AffineForm(9, c_iter=-1)
        assert value.interval == Interval(0, 9)

    def test_constant_reset_carry_is_hulled(self):
        def build(b):
            flag = b.carry(0, "flag")
            b.update(flag, b.const(1))
            return flag
        value = _evaluate(build)
        assert value.interval == Interval(0, 1)
        assert not value.is_exact  # two distinct values, not affine

    def test_opaque_payload_is_top(self):
        value = _evaluate(lambda b: b.logic(lambda: 3, name="opaque"))
        assert not value.is_exact
        assert value.interval == Interval.top()

    def test_scaled_counter_plus_lane(self):
        def build(b):
            it = b.carry(0, "it")
            b.update(it, b.add(it, b.const(1), name="next"))
            return b.add(b.mul(it, b.const(4), name="scaled"), b.laneid())
        value = _evaluate(build, iterations=4, lanes=8)
        assert value.affine == AffineForm(0, c_iter=4, c_lane=1)
        assert value.interval == Interval(0, 19)

    def test_mod_bounds_an_unbounded_counter(self):
        def build(b):
            raw = b.logic(lambda: 0, name="opaque")
            return b.mod(raw, b.const(8))
        value = _evaluate(build)
        assert value.interval == Interval(0, 7)
        assert not value.is_exact  # hull is sound but not exact

    def test_select_joins_branches(self):
        def build(b):
            cond = b.logic(lambda: 1, name="cond")
            return b.select(cond, b.const(2), b.const(11))
        value = _evaluate(build)
        assert value.interval == Interval(2, 11)
        assert not value.is_exact

    def test_stream_reads_are_top(self):
        def build(b):
            src = b.istream("src")
            return b.read(src, name="data")
        value = _evaluate(build)
        assert value.interval == Interval.top()


class TestClampAlgebra:
    """The min/max/clamp algebra (the sparse apps' range guard)."""

    def test_interval_min_is_pointwise(self):
        assert Interval(2, 10).min_(Interval(4, 6)) == Interval(2, 6)
        assert Interval.top().min_(Interval(5, 5)) == Interval(None, 5)

    def test_interval_max_is_pointwise(self):
        assert Interval(2, 10).max_(Interval(4, 6)) == Interval(4, 10)
        assert Interval.top().max_(Interval(0, 0)) == Interval(0, None)

    def test_min_of_constants(self):
        value = _evaluate(lambda b: b.min_(b.const(7), b.const(3)))
        assert value.interval == Interval(3, 3)

    def test_max_of_constants(self):
        value = _evaluate(lambda b: b.max_(b.const(7), b.const(3)))
        assert value.interval == Interval(7, 7)

    def test_clamp_tames_a_data_dependent_index(self):
        # The load-bearing property: a stream read is TOP, but
        # clamp(TOP, 0, 15) is [0, 15] — provably in bounds.
        def build(b):
            src = b.istream("src")
            raw = b.read(src, name="col")
            return b.clamp(raw, b.const(0), b.const(15), name="guard")
        value = _evaluate(build)
        assert value.interval == Interval(0, 15)
        assert not value.is_exact  # sound hull, no affine form

    def test_clamp_is_identity_on_proven_ranges(self):
        def build(b):
            idx = b.mod(b.laneid(), b.const(8))
            return b.clamp(idx, b.const(0), b.const(15))
        value = _evaluate(build, lanes=8)
        assert value.interval == Interval(0, 7)

    def test_minmax_of_identical_affine_stays_exact(self):
        def build(b):
            lane = b.laneid()
            return b.min_(lane, lane)
        value = _evaluate(build, lanes=8)
        assert value.is_exact
        assert value.affine == AffineForm(0, c_lane=1)

    def test_minmax_of_distinct_affine_drops_exactness(self):
        def build(b):
            return b.min_(b.laneid(), b.const(3))
        value = _evaluate(build, lanes=8)
        assert value.interval == Interval(0, 3)
        assert not value.is_exact  # extremum is not affine in lane

    def test_clamp_payload_semantics(self):
        # The concrete payloads agree with the abstract story.
        b = KernelBuilder("payload")
        dst = b.ostream("dst")
        clamped = b.clamp(b.const(99), b.const(0), b.const(15))
        b.write(dst, clamped)
        kernel = b.build()
        ops = {op.name: op for op in kernel.ops}
        assert ops["clamp_min"].algebra == "min"
        assert ops["clamp_max"].algebra == "max"
        assert ops["clamp_min"].payload is min
        assert ops["clamp_max"].payload is max
