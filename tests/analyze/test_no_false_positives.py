"""The analyzer's no-false-positive contract, enforced empirically.

Every shipped benchmark on every Table 2 preset must analyze with zero
error-level findings: these are real, working programs, so any error
here is by definition a false positive (or a latent app bug — either
way, a gate failure worth stopping the build for).
"""

import pytest

from repro.analyze.driver import (
    APP_NAMES,
    build_chain,
    check_app,
    check_everything,
)
from repro.config.presets import all_configs

CONFIG_NAMES = ("Base", "ISRF1", "ISRF4", "Cache")


@pytest.mark.parametrize("config_name", CONFIG_NAMES)
@pytest.mark.parametrize("app", APP_NAMES)
def test_no_error_level_findings(app, config_name):
    report = check_app(app, all_configs()[config_name])
    assert report.ok, report.describe()


def test_check_everything_covers_the_grid():
    reports = check_everything()
    assert len(reports) == len(APP_NAMES) * len(CONFIG_NAMES)
    assert all(report.ok for report in reports)
    subjects = {report.subject for report in reports}
    assert "FFT 2D on ISRF4" in subjects


def test_chains_contain_every_strip():
    # The analyzed program must be the same chained steady-state shape
    # the harness simulates, not a single strip.
    config = all_configs()["ISRF4"]
    one = build_chain("Sort", config, reps=1)
    three = build_chain("Sort", config, reps=3)
    assert len(three.tasks) > len(one.tasks)


def test_deliberate_filter_pop_stays_a_warning():
    # Filter's scratchpad kernel pops its input stream purely for fill
    # bandwidth; that idiom must stay warning-level (never an error).
    report = check_app("Filter", all_configs()["Base"])
    assert report.ok
    assert "unused-read" in {d.code for d in report.warnings}
