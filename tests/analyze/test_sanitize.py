"""Machine-state sanitizer: detection power and inertness.

(The bit-identical-stats half of the inertness contract lives in
``tests/machine/test_golden_stats.py::test_sanitizer_is_inert``.)
"""

from types import SimpleNamespace

import pytest

from repro.analyze import MachineSanitizer
from repro.apps import fft
from repro.config.presets import base_config, isrf4_config
from repro.core import SrfArray
from repro.errors import DeadlockError, SanitizerError
from repro.kernel.builder import KernelBuilder
from repro.machine import StreamProcessor, StreamProgram
from repro.machine.program import KernelInvocation


class TestInstallation:
    def test_off_by_default_leaves_no_state(self):
        proc = StreamProcessor(isrf4_config())
        assert proc._sanitizer is None

    def test_sanitize_flag_installs_checker(self):
        proc = StreamProcessor(isrf4_config(sanitize=True))
        assert isinstance(proc._sanitizer, MachineSanitizer)

    def test_clean_machine_passes(self):
        proc = StreamProcessor(isrf4_config(sanitize=True))
        proc._sanitizer.check(0)  # must not raise
        assert proc._sanitizer.checks_run == 1

    def test_sanitized_run_completes_and_checks_every_cycle(self):
        config = isrf4_config(sanitize=True)
        result = fft.run(config, n=16).require_verified()
        assert result.verified
        assert result.cycles > 0


class TestAllocatorInvariants:
    def test_misaligned_allocation_detected(self):
        proc = StreamProcessor(base_config(sanitize=True))
        proc.srf.allocator._regions.append(
            SimpleNamespace(base=3, words=5, name="evil")
        )
        with pytest.raises(SanitizerError) as excinfo:
            proc._sanitizer.check(0)
        assert "not block-aligned" in str(excinfo.value)
        assert excinfo.value.report.violations

    def test_overlapping_allocations_detected(self):
        proc = StreamProcessor(base_config(sanitize=True))
        SrfArray(proc.srf, 64, "a")
        block = proc.srf.geometry.block_words
        proc.srf.allocator._regions.append(
            SimpleNamespace(base=0, words=block, name="clash")
        )
        with pytest.raises(SanitizerError, match="overlaps"):
            proc._sanitizer.check(0)

    def test_allocation_beyond_srf_detected(self):
        proc = StreamProcessor(base_config(sanitize=True))
        total = proc.srf.geometry.total_words
        block = proc.srf.geometry.block_words
        proc.srf.allocator._regions.append(
            SimpleNamespace(base=total, words=block, name="beyond")
        )
        with pytest.raises(SanitizerError, match="beyond"):
            proc._sanitizer.check(0)

    def test_report_collects_all_violations_of_the_cycle(self):
        proc = StreamProcessor(base_config(sanitize=True))
        total = proc.srf.geometry.total_words
        block = proc.srf.geometry.block_words
        proc.srf.allocator._regions.append(
            SimpleNamespace(base=3, words=5, name="evil")
        )
        proc.srf.allocator._regions.append(
            SimpleNamespace(base=total, words=block, name="beyond")
        )
        with pytest.raises(SanitizerError) as excinfo:
            proc._sanitizer.check(7)
        report = excinfo.value.report
        assert report.cycle == 7
        assert len(report.violations) >= 2
        assert "sanitizer:" in report.describe()


def _lookup_program(proc):
    """One indexed-lookup kernel, with a hook slot for corruption."""
    b = KernelBuilder("lookup")
    table = b.idxl_istream("table")
    dst = b.ostream("dst")
    it = b.carry(0, "it")
    b.update(it, b.add(it, b.const(1), name="next"))
    b.write(dst, b.idx_read(table, it))
    kernel = b.build()
    table_a = SrfArray(proc.srf, 256, "table")
    out = SrfArray(proc.srf, 256, "out")
    invocation = KernelInvocation(
        kernel,
        {"table": table_a.inlane_read(), "dst": out.seq_write()},
        iterations=8,
    )
    prog = StreamProgram("lookup")
    prog.add_kernel(invocation)
    return prog, invocation


class TestRuntimeDetection:
    def test_corrupted_pending_counter_aborts_the_run(self):
        proc = StreamProcessor(isrf4_config(sanitize=True))
        prog, invocation = _lookup_program(proc)

        def corrupt():
            # After stream binding the indexed stream is registered;
            # skew its O(1) pending-words counter off the ground truth.
            proc.srf._indexed_list[0].pending_words += 1

        invocation.on_start = corrupt
        with pytest.raises(SanitizerError, match="pending_words"):
            proc.run_program(prog)

    def test_sanitizer_catches_it_long_before_the_deadlock_horizon(self):
        # Without the sanitizer the same corruption only surfaces as a
        # deadlock after the full no-progress horizon, with nothing
        # pointing at the broken counter; the sanitizer converts that
        # into an immediate, named invariant violation.
        proc = StreamProcessor(isrf4_config())
        prog, invocation = _lookup_program(proc)

        def corrupt():
            proc.srf._indexed_list[0].pending_words += 1

        invocation.on_start = corrupt
        with pytest.raises(DeadlockError):
            proc.run_program(prog)
        assert proc.cycle > 10_000  # burned the whole horizon first
