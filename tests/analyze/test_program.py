"""Program-analyzer mutation corpus.

Each test constructs a stream program with exactly one deliberate
defect and asserts the analyzer reports that defect's stable code at
the right severity — plus clean-program tests proving the same
constructs pass when correct.
"""

import pytest

from repro.analyze import analyze_program, footprint
from repro.config.presets import base_config, isrf4_config
from repro.core import SrfArray
from repro.core.descriptors import IndexSpace, StreamDescriptor, StreamKind
from repro.core.geometry import SrfGeometry
from repro.kernel.builder import KernelBuilder
from repro.machine import StreamProcessor, StreamProgram
from repro.machine.program import KernelInvocation
from repro.memory import load_op, store_op


@pytest.fixture
def isrf():
    return StreamProcessor(isrf4_config())


@pytest.fixture
def base():
    return StreamProcessor(base_config())


def copy_kernel(n_reads=1):
    """src -> dst pass-through kernel with ``n_reads`` pops/iteration."""
    b = KernelBuilder("copy")
    src = b.istream("src")
    dst = b.ostream("dst")
    total = b.read(src, name="pop0")
    for k in range(1, n_reads):
        total = b.add(total, b.read(src, name=f"pop{k}"), name=f"sum{k}")
    b.write(dst, total)
    return b.build()


def table_kernel(index_const=None, predicated=False, affine_stride=None):
    """Kernel reading ``table[index]`` with a configurable index shape."""
    b = KernelBuilder("lookup")
    table = b.idxl_istream("table")
    dst = b.ostream("dst")
    if affine_stride is not None:
        it = b.carry(0, "it")
        b.update(it, b.add(it, b.const(1), name="next"))
        index = b.mul(it, b.const(affine_stride), name="stride")
    else:
        index = b.const(index_const if index_const is not None else 0)
    predicate = b.lt(index, b.const(10**9)) if predicated else None
    b.write(dst, b.idx_read(table, index, predicate=predicate))
    return b.build()


def error_codes(report):
    return {d.code for d in report.errors}


class TestCleanPrograms:
    def test_sequential_copy_is_clean(self, isrf):
        kernel = copy_kernel()
        a = SrfArray(isrf.srf, 64, "a")
        c = SrfArray(isrf.srf, 64, "c")
        region = isrf.memory.allocate(64, "r")
        prog = StreamProgram("clean")
        t_load = prog.add_memory(load_op(a.seq_read(), region))
        t_kernel = prog.add_kernel(KernelInvocation(
            kernel, {"src": a.seq_read(), "dst": c.seq_write()},
            iterations=8,
        ), deps=[t_load])
        prog.add_memory(store_op(c.seq_read(), region), deps=[t_kernel])
        report = analyze_program(prog, isrf.config)
        assert report.ok, report.describe()

    def test_in_bounds_lookup_is_proven(self, isrf):
        kernel = table_kernel(affine_stride=1)
        table = SrfArray(isrf.srf, 256, "table")
        out = SrfArray(isrf.srf, 256, "out")
        prog = StreamProgram("lookup")
        prog.add_kernel(KernelInvocation(
            kernel,
            {"table": table.inlane_read(), "dst": out.seq_write()},
            iterations=16,  # indices 0..15 < 32 records/lane
        ))
        report = analyze_program(prog, isrf.config)
        assert report.ok, report.describe()
        summary = [d for d in report.diagnostics if d.code == "bounds-summary"]
        assert summary and "1 of 1" in summary[0].message


class TestBindings:
    def test_missing_binding(self, isrf):
        kernel = copy_kernel()
        a = SrfArray(isrf.srf, 64, "a")
        c = SrfArray(isrf.srf, 64, "c")
        invocation = KernelInvocation(
            kernel, {"src": a.seq_read(), "dst": c.seq_write()},
            iterations=8,
        )
        del invocation.bindings["src"]  # bypass construction check
        prog = StreamProgram("broken")
        prog.add_kernel(invocation)
        assert "missing-binding" in error_codes(
            analyze_program(prog, isrf.config)
        )

    def test_binding_kind_mismatch(self, isrf):
        kernel = copy_kernel()
        a = SrfArray(isrf.srf, 64, "a")
        c = SrfArray(isrf.srf, 64, "c")
        prog = StreamProgram("broken")
        prog.add_kernel(KernelInvocation(
            kernel, {"src": a.seq_read(), "dst": c.seq_read()},  # not write
            iterations=8,
        ))
        assert "binding-kind-mismatch" in error_codes(
            analyze_program(prog, isrf.config)
        )

    def test_binding_record_words_mismatch(self, isrf):
        b = KernelBuilder("wide")
        table = b.idxl_istream("table", record_words=2)
        dst = b.ostream("dst")
        b.write(dst, b.idx_read(table, b.const(0)))
        kernel = b.build()
        arr = SrfArray(isrf.srf, 256, "arr")
        out = SrfArray(isrf.srf, 256, "out")
        prog = StreamProgram("broken")
        prog.add_kernel(KernelInvocation(
            kernel,
            {"table": arr.inlane_read(record_words=1),  # formal wants 2
             "dst": out.seq_write()},
            iterations=4,
        ))
        assert "binding-record-words" in error_codes(
            analyze_program(prog, isrf.config)
        )

    def test_indexing_on_sequential_machine(self, base):
        kernel = table_kernel(index_const=0)
        table = SrfArray(base.srf, 256, "table")
        out = SrfArray(base.srf, 256, "out")
        prog = StreamProgram("broken")
        prog.add_kernel(KernelInvocation(
            kernel,
            {"table": table.inlane_read(), "dst": out.seq_write()},
            iterations=4,
        ))
        assert "indexing-unsupported" in error_codes(
            analyze_program(prog, base.config)
        )

    def test_srf_overflow(self, isrf):
        kernel = copy_kernel()
        a = SrfArray(isrf.srf, 64, "a")
        beyond = StreamDescriptor(
            "beyond", StreamKind.SEQUENTIAL_WRITE,
            base=isrf.config.srf_words, length_records=64,
        )
        prog = StreamProgram("broken")
        prog.add_kernel(KernelInvocation(
            kernel, {"src": a.seq_read(), "dst": beyond}, iterations=8,
        ))
        assert "srf-overflow" in error_codes(
            analyze_program(prog, isrf.config)
        )


class TestBounds:
    def test_constant_index_out_of_bounds(self, isrf):
        table = SrfArray(isrf.srf, 256, "table")  # 32 records/lane
        out = SrfArray(isrf.srf, 256, "out")
        kernel = table_kernel(index_const=32)  # first invalid record
        prog = StreamProgram("broken")
        prog.add_kernel(KernelInvocation(
            kernel,
            {"table": table.inlane_read(), "dst": out.seq_write()},
            iterations=4,
        ))
        report = analyze_program(prog, isrf.config)
        assert "index-out-of-bounds" in error_codes(report)

    def test_affine_index_escapes_on_last_iteration(self, isrf):
        table = SrfArray(isrf.srf, 256, "table")  # 32 records/lane
        out = SrfArray(isrf.srf, 256, "out")
        kernel = table_kernel(affine_stride=1)
        prog = StreamProgram("broken")
        prog.add_kernel(KernelInvocation(
            kernel,
            {"table": table.inlane_read(), "dst": out.seq_write()},
            iterations=33,  # index reaches 32 on the final iteration
        ))
        assert "index-out-of-bounds" in error_codes(
            analyze_program(prog, isrf.config)
        )

    def test_predicated_escape_is_not_an_error(self, isrf):
        # A lane may be predicated off exactly when its index escapes;
        # the analyzer must downgrade to a cannot-prove note.
        table = SrfArray(isrf.srf, 256, "table")
        out = SrfArray(isrf.srf, 256, "out")
        kernel = table_kernel(index_const=32, predicated=True)
        prog = StreamProgram("guarded")
        prog.add_kernel(KernelInvocation(
            kernel,
            {"table": table.inlane_read(), "dst": out.seq_write()},
            iterations=4,
        ))
        report = analyze_program(prog, isrf.config)
        assert report.ok, report.describe()
        assert "bounds-unproven" in report.codes()

    def test_zero_iterations_proves_nothing_and_errors_nothing(self, isrf):
        table = SrfArray(isrf.srf, 256, "table")
        out = SrfArray(isrf.srf, 256, "out")
        kernel = table_kernel(index_const=32)
        prog = StreamProgram("empty")
        prog.add_kernel(KernelInvocation(
            kernel,
            {"table": table.inlane_read(), "dst": out.seq_write()},
            iterations=0,  # never executes: no access, no fault
        ))
        assert analyze_program(prog, isrf.config).ok


class TestExtents:
    def test_stream_overrun(self, isrf):
        kernel = copy_kernel()
        a = SrfArray(isrf.srf, 32, "a")  # one block: 4 words/lane
        c = SrfArray(isrf.srf, 256, "c")
        prog = StreamProgram("broken")
        prog.add_kernel(KernelInvocation(
            kernel, {"src": a.seq_read(), "dst": c.seq_write()},
            iterations=5,  # pops 5 words/lane from a 4-word/lane stream
        ))
        assert "stream-overrun" in error_codes(
            analyze_program(prog, isrf.config)
        )

    def test_exact_fit_is_clean(self, isrf):
        kernel = copy_kernel()
        a = SrfArray(isrf.srf, 32, "a")
        c = SrfArray(isrf.srf, 256, "c")
        prog = StreamProgram("snug")
        prog.add_kernel(KernelInvocation(
            kernel, {"src": a.seq_read(), "dst": c.seq_write()},
            iterations=4,
        ))
        assert "stream-overrun" not in {
            d.code for d in analyze_program(prog, isrf.config).diagnostics
        }


class TestHazards:
    def test_unordered_load_races_kernel(self, isrf):
        kernel = copy_kernel()
        a = SrfArray(isrf.srf, 64, "a")
        c = SrfArray(isrf.srf, 64, "c")
        region = isrf.memory.allocate(64, "r")
        prog = StreamProgram("racy")
        prog.add_memory(load_op(a.seq_read(), region))  # writes a
        prog.add_kernel(KernelInvocation(  # reads a, NO dependency
            kernel, {"src": a.seq_read(), "dst": c.seq_write()},
            iterations=8,
        ))
        assert "srf-race" in error_codes(analyze_program(prog, isrf.config))

    def test_ordered_tasks_do_not_race(self, isrf):
        kernel = copy_kernel()
        a = SrfArray(isrf.srf, 64, "a")
        c = SrfArray(isrf.srf, 64, "c")
        region = isrf.memory.allocate(64, "r")
        prog = StreamProgram("ordered")
        t_load = prog.add_memory(load_op(a.seq_read(), region))
        prog.add_kernel(KernelInvocation(
            kernel, {"src": a.seq_read(), "dst": c.seq_write()},
            iterations=8,
        ), deps=[t_load])
        report = analyze_program(prog, isrf.config)
        assert "srf-race" not in {d.code for d in report.diagnostics}

    def test_disjoint_unordered_tasks_do_not_race(self, isrf):
        kernel = copy_kernel()
        a = SrfArray(isrf.srf, 64, "a")
        c = SrfArray(isrf.srf, 64, "c")
        other = SrfArray(isrf.srf, 64, "other")
        region = isrf.memory.allocate(64, "r")
        prog = StreamProgram("disjoint")
        prog.add_memory(load_op(other.seq_read(), region))
        prog.add_kernel(KernelInvocation(
            kernel, {"src": a.seq_read(), "dst": c.seq_write()},
            iterations=8,
        ))
        assert analyze_program(prog, isrf.config).ok

    def test_unordered_kernels_warn_not_error(self, isrf):
        kernel = copy_kernel()
        a = SrfArray(isrf.srf, 64, "a")
        c = SrfArray(isrf.srf, 64, "c")
        d = SrfArray(isrf.srf, 64, "d")
        prog = StreamProgram("kernels")
        prog.add_kernel(KernelInvocation(
            kernel, {"src": a.seq_read(), "dst": c.seq_write()},
            iterations=8, name="writer",
        ))
        prog.add_kernel(KernelInvocation(
            kernel, {"src": c.seq_read(), "dst": d.seq_write()},
            iterations=8, name="reader",
        ))
        report = analyze_program(prog, isrf.config)
        assert report.ok  # kernels serialise on the microcontroller
        assert "kernel-overlap-unordered" in {
            d.code for d in report.warnings
        }

    def test_transitive_ordering_is_honoured(self, isrf):
        kernel = copy_kernel()
        a = SrfArray(isrf.srf, 64, "a")
        c = SrfArray(isrf.srf, 64, "c")
        region = isrf.memory.allocate(64, "r")
        prog = StreamProgram("transitive")
        t_load = prog.add_memory(load_op(a.seq_read(), region))
        t_mid = prog.add_memory(
            load_op(c.seq_read(), region), deps=[t_load]
        )
        prog.add_kernel(KernelInvocation(  # ordered after load via t_mid
            kernel, {"src": a.seq_read(), "dst": c.seq_write()},
            iterations=8,
        ), deps=[t_mid])
        report = analyze_program(prog, isrf.config)
        assert "srf-race" not in {d.code for d in report.diagnostics}


class TestDependencies:
    def test_dangling_dependency(self, isrf):
        a = SrfArray(isrf.srf, 64, "a")
        region = isrf.memory.allocate(64, "r")
        prog = StreamProgram("dangling")
        prog.add_memory(load_op(a.seq_read(), region), deps=[10**9])
        assert "dangling-dependency" in error_codes(
            analyze_program(prog, isrf.config)
        )


class TestBankPressure:
    def test_affine_access_gets_an_estimate(self, isrf):
        table = SrfArray(isrf.srf, 256, "table")
        out = SrfArray(isrf.srf, 256, "out")
        kernel = table_kernel(affine_stride=1)
        prog = StreamProgram("pressure")
        prog.add_kernel(KernelInvocation(
            kernel,
            {"table": table.inlane_read(), "dst": out.seq_write()},
            iterations=16,
        ))
        report = analyze_program(prog, isrf.config)
        assert "bank-pressure" in report.codes()

    def test_opaque_access_gets_unknown_note(self, isrf):
        b = KernelBuilder("opaque")
        table = b.idxl_istream("table")
        dst = b.ostream("dst")
        index = b.logic(lambda: 0, name="whoknows")
        bounded = b.mod(index, b.const(8))
        b.write(dst, b.idx_read(table, bounded))
        kernel = b.build()
        table_a = SrfArray(isrf.srf, 256, "table")
        out = SrfArray(isrf.srf, 256, "out")
        prog = StreamProgram("opaque")
        prog.add_kernel(KernelInvocation(
            kernel,
            {"table": table_a.inlane_read(), "dst": out.seq_write()},
            iterations=16,
        ))
        report = analyze_program(prog, isrf.config)
        assert "bank-pressure-unknown" in report.codes()

    def test_bank_pressure_skipped_on_sequential_machines(self, base):
        kernel = copy_kernel()
        a = SrfArray(base.srf, 64, "a")
        c = SrfArray(base.srf, 64, "c")
        prog = StreamProgram("seq")
        prog.add_kernel(KernelInvocation(
            kernel, {"src": a.seq_read(), "dst": c.seq_write()},
            iterations=8,
        ))
        report = analyze_program(prog, base.config)
        assert "bank-pressure" not in report.codes()


class TestFootprint:
    def test_per_lane_footprint_is_block_per_m_words(self):
        geometry = SrfGeometry(lanes=8, bank_words=4096,
                               words_per_lane_access=4,
                               subarrays_per_bank=4)
        descriptor = StreamDescriptor(
            "t", StreamKind.INLANE_INDEXED_READ, base=64,
            length_records=6, index_space=IndexSpace.PER_LANE,
        )
        start, end = footprint(descriptor, geometry)
        assert start == 64
        assert end == 64 + 2 * geometry.block_words  # ceil(6/4) blocks

    def test_sequential_footprint_rounds_to_blocks(self):
        geometry = SrfGeometry(lanes=8, bank_words=4096,
                               words_per_lane_access=4,
                               subarrays_per_bank=4)
        descriptor = StreamDescriptor(
            "s", StreamKind.SEQUENTIAL_READ, base=0, length_records=33,
        )
        start, end = footprint(descriptor, geometry)
        assert (start, end) == (0, 2 * geometry.block_words)
