"""Mutation corpus over the sparse apps: the analyzer must catch what
the zero-false-positive gate must not flag.

``tests/analyze/test_no_false_positives.py`` proves the analyzer stays
silent on every *correct* shipped program. That is only half the
contract — a silent analyzer is worthless if it is silent on broken
programs too. Here the sparse apps' real steady-state chains are
mutated the way their bugs would actually manifest, and the analyzer
must convict:

* an off-by-one in the CSR row extent inflates the kernel trip count
  past the bound streams — ``stream-overrun``;
* a halo under-allocation shrinks the stencil's grid binding by one
  record while the kernel's last affine tap still reaches it —
  a *provable* ``index-out-of-bounds`` (the tap index is exact affine,
  so the verdict is a conviction, not a cannot-prove note).
"""

import dataclasses

import pytest

from repro.analyze.diagnostics import Severity
from repro.analyze.driver import build_chain, check_app
from repro.analyze.program import analyze_program
from repro.config.presets import all_configs

ISRF_PRESETS = ("ISRF1", "ISRF4")


def _mutate_kernels(chain, name_fragment, mutate):
    """Apply ``mutate(invocation)`` to every matching kernel task."""
    hits = 0
    for task in chain.tasks:
        if task.is_kernel and name_fragment in task.name:
            mutate(task.work)
            hits += 1
    assert hits, f"no kernel matching {name_fragment!r} in the chain"
    return chain


@pytest.mark.parametrize("preset", ISRF_PRESETS)
def test_csr_row_extent_off_by_one_is_caught(preset):
    """iterations+1 == one phantom CSR entry past the row extent."""
    config = all_configs()[preset]
    chain = build_chain("SpMV_CSR", config, reps=1)

    def overrun(invocation):
        invocation.iterations += 1

    _mutate_kernels(chain, "spmv_csr_isrf", overrun)
    report = analyze_program(chain, config)
    assert "stream-overrun" in {d.code for d in report.errors}


@pytest.mark.parametrize("preset", ISRF_PRESETS)
def test_csc_row_extent_off_by_one_is_caught(preset):
    config = all_configs()[preset]
    chain = build_chain("SpMV_CSC", config, reps=1)

    def overrun(invocation):
        invocation.iterations += 1

    _mutate_kernels(chain, "spmv_csc_isrf", overrun)
    report = analyze_program(chain, config)
    assert "stream-overrun" in {d.code for d in report.errors}


@pytest.mark.parametrize("preset", ISRF_PRESETS)
def test_stencil_halo_underallocation_is_proven_out_of_bounds(preset):
    """Shrink the grid binding below the last tap's reach.

    The box pattern's bottom-right tap lands exactly on the final grid
    record, and the tap addresses are exact affine forms — so one
    missing record must upgrade to a *proven* violation, not merely an
    unproven-bounds note.
    """
    config = all_configs()[preset]
    chain = build_chain("Stencil_BOX", config, reps=1)

    def shrink(invocation):
        grid = invocation.bindings["grid"]
        invocation.bindings["grid"] = dataclasses.replace(
            grid, length_records=grid.length_records - 1
        )

    _mutate_kernels(chain, "stencil", shrink)
    report = analyze_program(chain, config)
    assert "index-out-of-bounds" in {d.code for d in report.errors}


@pytest.mark.parametrize("app", ["SpMV_CSR", "SpMV_CSC",
                                 "Stencil_STAR", "Stencil_BOX"])
@pytest.mark.parametrize("preset", ISRF_PRESETS)
def test_sparse_bounds_fully_proven_without_suppressions(app, preset):
    """The flip side of the mutations: on the *unmutated* apps every
    indexed access is proven in bounds — zero errors, zero warnings,
    and zero ``bounds-unproven`` notes (the clamp range guard gives the
    interval domain exact bounds even for data-dependent indices)."""
    report = check_app(app, all_configs()[preset])
    assert not report.errors
    assert not report.warnings
    note_codes = {d.code for d in report.by_severity(Severity.INFO)}
    assert "bounds-unproven" not in note_codes
    assert "bounds-summary" in note_codes  # accesses were analyzed
