"""Kernel-verifier mutation corpus.

Each test hand-builds (or builder-builds, then mutates) a deliberately
broken kernel and asserts the verifier reports the *specific* stable
diagnostic code for that defect — and nothing error-level for clean
kernels. Hand-built :class:`~repro.kernel.ir.Kernel` objects bypass
``KernelBuilder.build()`` validation on purpose: the verifier must
catch broken graphs however they were produced.
"""

import pytest

from repro.analyze import Severity, verify_kernel
from repro.core.descriptors import StreamKind
from repro.errors import KernelVerifyError
from repro.kernel.builder import KernelBuilder
from repro.kernel.ir import Carry, Kernel, KernelStream, Op
from repro.kernel.ops import OpKind


def codes(diagnostics, severity=None):
    return {
        d.code for d in diagnostics
        if severity is None or d.severity is severity
    }


def error_codes(diagnostics):
    return codes(diagnostics, Severity.ERROR)


def clean_kernel() -> Kernel:
    b = KernelBuilder("clean")
    src = b.istream("src")
    dst = b.ostream("dst")
    acc = b.carry(0.0, "acc")
    value = b.read(src, name="value")
    total = b.add(acc, value, name="total")
    b.update(acc, total)
    b.write(dst, total)
    return b.build()


class TestCleanKernels:
    def test_builder_kernel_verifies_clean(self):
        assert verify_kernel(clean_kernel()) == []

    def test_raise_on_error_passes_clean(self):
        assert verify_kernel(clean_kernel(), raise_on_error=True) == []


class TestSsa:
    def test_foreign_operand(self):
        stray = Op(OpKind.CONST, value=1.0, name="stray")
        use = Op(OpKind.ARITH, (stray,), payload=lambda x: x, name="use")
        kernel = Kernel("bad", ops=[use])
        assert "operand-not-member" in error_codes(verify_kernel(kernel))

    def test_use_before_def(self):
        late = Op(OpKind.CONST, value=2.0, name="late")
        early = Op(OpKind.ARITH, (late,), payload=lambda x: x, name="early")
        kernel = Kernel("bad", ops=[early, late])
        assert "use-before-def" in error_codes(verify_kernel(kernel))

    def test_carry_reads_are_exempt_from_def_order(self):
        # The loop back edge legitimately reads a value defined "later".
        assert "use-before-def" not in codes(verify_kernel(clean_kernel()))


class TestArity:
    def test_idx_write_missing_value_operand(self):
        stream = KernelStream("table", StreamKind.INLANE_INDEXED_WRITE)
        index = Op(OpKind.CONST, value=0, name="index")
        broken = Op(OpKind.IDX_WRITE, (index,), stream=stream, name="put")
        kernel = Kernel("bad", ops=[index, broken],
                        streams={"table": stream})
        assert "operand-arity" in error_codes(verify_kernel(kernel))

    def test_arith_without_payload(self):
        value = Op(OpKind.CONST, value=1.0, name="value")
        broken = Op(OpKind.ARITH, (value,), payload=None, name="broken")
        sink_stream = KernelStream("out", StreamKind.SEQUENTIAL_WRITE)
        sink = Op(OpKind.SEQ_WRITE, (broken,), stream=sink_stream)
        kernel = Kernel("bad", ops=[value, broken, sink],
                        streams={"out": sink_stream})
        assert "missing-payload" in error_codes(verify_kernel(kernel))


class TestCarries:
    def test_carry_never_updated(self):
        carry = Carry(0.0, "acc")
        read = Op(OpKind.CARRY, name="carry_acc")
        read.carry = carry
        carry.read_op = read
        stream = KernelStream("out", StreamKind.SEQUENTIAL_WRITE)
        sink = Op(OpKind.SEQ_WRITE, (read,), stream=stream)
        kernel = Kernel("bad", ops=[read, sink],
                        streams={"out": stream}, carries=[carry])
        assert "carry-never-updated" in error_codes(verify_kernel(kernel))

    def test_carry_read_without_declaration(self):
        carry = Carry(0.0, "ghost")
        read = Op(OpKind.CARRY, name="carry_ghost")
        read.carry = carry
        stream = KernelStream("out", StreamKind.SEQUENTIAL_WRITE)
        sink = Op(OpKind.SEQ_WRITE, (read,), stream=stream)
        kernel = Kernel("bad", ops=[read, sink], streams={"out": stream})
        assert "carry-not-declared" in error_codes(verify_kernel(kernel))

    def test_carry_updated_by_foreign_op(self):
        kernel = clean_kernel()
        kernel.carries[0].update_op = Op(
            OpKind.CONST, value=0.0, name="foreign"
        )
        assert "carry-update-not-member" in error_codes(verify_kernel(kernel))


class TestStreams:
    def test_stream_not_declared(self):
        stream = KernelStream("ghost", StreamKind.SEQUENTIAL_READ)
        read = Op(OpKind.SEQ_READ, stream=stream, name="pop")
        sink_stream = KernelStream("out", StreamKind.SEQUENTIAL_WRITE)
        sink = Op(OpKind.SEQ_WRITE, (read,), stream=sink_stream)
        kernel = Kernel("bad", ops=[read, sink],
                        streams={"out": sink_stream})
        assert "stream-not-declared" in error_codes(verify_kernel(kernel))

    def test_stream_kind_mismatch(self):
        # A sequential pop aimed at a write-only stream.
        stream = KernelStream("out", StreamKind.SEQUENTIAL_WRITE)
        read = Op(OpKind.SEQ_READ, stream=stream, name="pop")
        sink = Op(OpKind.SEQ_WRITE, (read,), stream=stream)
        kernel = Kernel("bad", ops=[read, sink], streams={"out": stream})
        assert "stream-kind-mismatch" in error_codes(verify_kernel(kernel))

    def test_issue_without_data_pop(self):
        stream = KernelStream("table", StreamKind.INLANE_INDEXED_READ)
        index = Op(OpKind.CONST, value=0, name="index")
        issue = Op(OpKind.IDX_ISSUE, (index,), stream=stream, name="issue")
        kernel = Kernel("bad", ops=[index, issue],
                        streams={"table": stream})
        assert "idx-issue-data-mismatch" in error_codes(verify_kernel(kernel))

    def test_data_pop_paired_with_wrong_stream(self):
        a = KernelStream("a", StreamKind.INLANE_INDEXED_READ)
        z = KernelStream("z", StreamKind.INLANE_INDEXED_READ)
        index = Op(OpKind.CONST, value=0, name="index")
        issue_a = Op(OpKind.IDX_ISSUE, (index,), stream=a, name="issue_a")
        issue_z = Op(OpKind.IDX_ISSUE, (index,), stream=z, name="issue_z")
        data_a = Op(OpKind.IDX_DATA, (issue_z,), stream=a, name="data_a")
        data_z = Op(OpKind.IDX_DATA, (issue_a,), stream=z, name="data_z")
        kernel = Kernel(
            "bad", ops=[index, issue_a, issue_z, data_a, data_z],
            streams={"a": a, "z": z},
        )
        assert "idx-data-unpaired" in error_codes(verify_kernel(kernel))

    def test_declared_but_unused_stream(self):
        b = KernelBuilder("lazy")
        b.istream("unused")
        dst = b.ostream("dst")
        b.write(dst, b.const(1.0))
        diagnostics = verify_kernel(b.build())
        assert "stream-unused" in codes(diagnostics, Severity.WARNING)


class TestLiveness:
    def test_dead_builder_op_flagged(self):
        b = KernelBuilder("wasteful")
        dst = b.ostream("dst")
        one = b.const(1.0)
        b.add(one, one, name="orphan")  # tagged pure, value unused
        b.write(dst, one)
        diagnostics = verify_kernel(b.build())
        assert "dead-op" in codes(diagnostics, Severity.WARNING)

    def test_opaque_payload_is_never_dead(self):
        # Apps pass side-effecting closures (host accumulators); an
        # untagged functional op must count as an effect, not dead code.
        b = KernelBuilder("igraph_idiom")
        src = b.istream("src")
        value = b.read(src, name="value")
        b.arith(lambda v: v, value, name="accumulate")
        kernel = b.build()
        assert "dead-op" not in codes(verify_kernel(kernel))

    def test_unused_sequential_read_flagged(self):
        b = KernelBuilder("popper")
        src = b.istream("src")
        dst = b.ostream("dst")
        b.read(src, name="ignored")
        b.write(dst, b.const(0.0))
        diagnostics = verify_kernel(b.build())
        assert "unused-read" in codes(diagnostics, Severity.WARNING)


class TestRaise:
    def test_raise_on_error_carries_diagnostics(self):
        stray = Op(OpKind.CONST, value=1.0, name="stray")
        use = Op(OpKind.ARITH, (stray,), payload=lambda x: x, name="use")
        kernel = Kernel("bad", ops=[use])
        with pytest.raises(KernelVerifyError) as excinfo:
            verify_kernel(kernel, raise_on_error=True)
        assert "operand-not-member" in str(excinfo.value)
        assert excinfo.value.diagnostics

    def test_warnings_alone_do_not_raise(self):
        b = KernelBuilder("warn_only")
        b.istream("unused")
        dst = b.ostream("dst")
        b.write(dst, b.const(1.0))
        diagnostics = verify_kernel(b.build(), raise_on_error=True)
        assert "stream-unused" in codes(diagnostics)
