"""Property-based backend equivalence over random stream programs.

Two tiers, both over :mod:`tests.fuzz.strategies` programs:

1. **Engine tier** — the vector engine against the scalar reference
   interpreter, iteration by iteration, comparing the *entire*
   observable contract: every IterationTrace entry (op identity and
   detail, with exact Python types), every carry value after every
   iteration, all sequential outputs, and final indexed-table
   contents. This is the strongest statement of drop-in equivalence
   and is cheap, so it gets the biggest example budget.

2. **Machine tier** — three-way agreement: the reference interpreter
   over list-backed streams, the full cycle-accurate machine on the
   scalar backend, and the same machine on the vector backend must all
   produce identical program outputs; the two machine runs must also
   produce bit-identical ``ProgramStats``.
"""

from hypothesis import given, settings, strategies as st

from repro.config import isrf4_config
from repro.core import SrfArray
from repro.errors import ExecutionError
from repro.kernel import KernelBuilder, KernelInterpreter
from repro.machine import KernelInvocation, StreamProcessor, StreamProgram
from repro.machine.vector import VectorKernelInterpreter, vector_supported
from repro.memory import load_op, store_op
from tests.fuzz.strategies import (
    FUZZ_EXAMPLES, LANES, LUT_RECORDS, WTAB_RECORDS, XLUT_RECORDS,
    assert_same_typed, build_kernel, kernel_specs, make_context,
    program_data, sparse_kernel_specs,
)
from tests.machine.test_golden_stats import fingerprint

import pytest


# ----------------------------------------------------------------------
# Engine tier
# ----------------------------------------------------------------------
@settings(max_examples=FUZZ_EXAMPLES)
@given(spec=kernel_specs(max_iterations=80),
       block=st.sampled_from([5, 64]))
def test_vector_engine_matches_reference(spec, block):
    """Trace-for-trace, type-for-type equality with the interpreter.

    ``block=5`` forces many mid-program block boundaries; ``block=64``
    is the production block size (extents above 64 still cross it).
    """
    kernel, streams = build_kernel(spec)
    iterations = spec["iterations"]
    ref_ctx = make_context(spec, streams)
    vec_ctx = make_context(spec, streams)
    ref = KernelInterpreter(kernel, LANES, ref_ctx)
    vec = VectorKernelInterpreter(kernel, LANES, vec_ctx, iterations,
                                  block=block)
    for iteration in range(iterations):
        ref_trace = ref.run_iteration()
        vec_trace = vec.run_iteration()
        assert ([op for op, _ in ref_trace.entries]
                == [op for op, _ in vec_trace.entries])
        for (op, ref_detail), (_, vec_detail) in zip(
                ref_trace.entries, vec_trace.entries):
            assert_same_typed(
                ref_detail, vec_detail,
                f"iter {iteration} op {op.op_id} ({op.kind.name})",
            )
        for carry in kernel.carries:
            assert_same_typed(
                ref.carry_values(carry.name),
                vec.carry_values(carry.name),
                f"iter {iteration} carry {carry.name}",
            )
    assert_same_typed(ref_ctx.output("out"), vec_ctx.output("out"),
                      "out stream")
    if streams["wtab"] is not None:
        for lane in range(LANES):
            assert_same_typed(ref_ctx.table("wtab", lane),
                              vec_ctx.table("wtab", lane),
                              f"wtab lane {lane}")


# ----------------------------------------------------------------------
# Machine tier
# ----------------------------------------------------------------------
def _run_on_machine(spec, kernel, streams, backend):
    """Run the spec's program on the cycle-accurate machine.

    Returns ``(outputs, final write-table contents or None, stats)``.
    """
    data = program_data(spec)
    iterations = spec["iterations"]
    proc = StreamProcessor(isrf4_config(backend=backend))
    n = iterations * LANES
    in_arr = SrfArray(proc.srf, n, "in")
    out_arr = SrfArray(proc.srf, n, "out")
    src = proc.memory.allocate(n, "src")
    dst = proc.memory.allocate(n, "dst")
    proc.memory.load_region(src,
                            in_arr.stream_image_per_lane(data["inputs"]))
    bindings = {"in": in_arr.seq_read(), "out": out_arr.seq_write()}
    wtab_arr = None
    if streams["lut"] is not None:
        lut_arr = SrfArray(proc.srf, LUT_RECORDS * LANES, "lut")
        lut_arr.fill_replicated(data["lut"])
        bindings["lut"] = lut_arr.inlane_read(LUT_RECORDS)
    if streams["xlut"] is not None:
        xlut_arr = SrfArray(proc.srf, XLUT_RECORDS, "xlut")
        xlut_arr.fill_stream_order(data["xlut"])
        bindings["xlut"] = xlut_arr.crosslane_read(XLUT_RECORDS)
    if streams["wtab"] is not None:
        wtab_arr = SrfArray(proc.srf, WTAB_RECORDS * LANES, "wtab")
        wtab_arr.fill_per_lane(data["wtab"])
        bindings["wtab"] = wtab_arr.inlane_write(WTAB_RECORDS)
    prog = StreamProgram("fuzz")
    t_load = prog.add_memory(load_op(in_arr.seq_read(), src))
    t_kernel = prog.add_kernel(
        KernelInvocation(kernel, bindings, iterations=iterations),
        deps=[t_load],
    )
    prog.add_memory(store_op(out_arr.seq_write(name="st"), dst),
                    deps=[t_kernel])
    stats = proc.run_program(prog)
    outputs = out_arr.per_lane_from_stream_image(
        proc.memory.dump_region(dst), iterations
    )
    tables = None
    if wtab_arr is not None:
        tables = [wtab_arr.read_per_lane(lane, WTAB_RECORDS)
                  for lane in range(LANES)]
    return outputs, tables, stats


def _assert_three_way(spec):
    """Reference interpreter, scalar machine and vector machine agree."""
    # Sequential machine streams transfer whole SRF access groups, so
    # round the extent to a multiple of four iterations per lane.
    spec = dict(spec, iterations=spec["iterations"] * 4)
    kernel, streams = build_kernel(spec)

    ref_ctx = make_context(spec, streams)
    KernelInterpreter(kernel, LANES, ref_ctx).run(spec["iterations"])
    expected = ref_ctx.output("out")

    scalar = _run_on_machine(spec, kernel, streams, "scalar")
    vector = _run_on_machine(spec, kernel, streams, "vector")
    assert scalar[0] == expected
    assert vector[0] == expected
    if streams["wtab"] is not None:
        reference_tables = [ref_ctx.table("wtab", lane)
                            for lane in range(LANES)]
        assert scalar[1] == reference_tables
        assert vector[1] == reference_tables
    assert fingerprint(scalar[2]) == fingerprint(vector[2])


@settings(max_examples=FUZZ_EXAMPLES)
@given(spec=kernel_specs(max_iterations=6))
def test_three_way_agreement(spec):
    _assert_three_way(spec)


@settings(max_examples=FUZZ_EXAMPLES)
@given(spec=sparse_kernel_specs(max_iterations=6))
def test_three_way_agreement_sparse(spec):
    """Same three-way agreement, with CSR-shaped index streams (sorted,
    uniform, power-law clustered, duplicate-heavy, empty-row sentinel
    runs) driving a predicated clamped gather — the sparse apps' access
    idiom under every index locality the suite sweeps."""
    _assert_three_way(spec)


# ----------------------------------------------------------------------
# Fallback coverage
# ----------------------------------------------------------------------
def _readwrite_kernel():
    b = KernelBuilder("rw")
    in_s = b.istream("in")
    out_s = b.ostream("out")
    table = b.idxl_iostream("tab")
    index = b.mod(b.read(in_s), b.const(WTAB_RECORDS))
    old = b.idx_read(table, index)
    b.idx_write(table, index, b.add(old, b.const(1)))
    b.write(out_s, old)
    return b.build(), in_s, out_s, table


def test_readwrite_streams_fall_back_to_scalar():
    """Read-write indexed streams are outside the vector engine's block
    reordering model: the engine must refuse them and the executor must
    transparently fall back — with, as everywhere, identical results."""
    kernel, in_s, out_s, table = _readwrite_kernel()
    assert not vector_supported(kernel)
    from repro.kernel.contexts import ListContext

    ctx = ListContext(LANES)
    ctx.bind_input(in_s, [[1] for _ in range(LANES)])
    ctx.bind_table(table, [[0] * WTAB_RECORDS for _ in range(LANES)])
    with pytest.raises(ExecutionError):
        VectorKernelInterpreter(kernel, LANES, ctx, 1)

    spec = {"iterations": 8, "ops": [], "use_carry": False,
            "carry_init": 0, "data_seed": 7}
    data = program_data(spec)

    def run(backend):
        proc = StreamProcessor(isrf4_config(backend=backend))
        n = spec["iterations"] * LANES
        in_arr = SrfArray(proc.srf, n, "in")
        out_arr = SrfArray(proc.srf, n, "out")
        tab_arr = SrfArray(proc.srf, WTAB_RECORDS * LANES, "tab")
        tab_arr.fill_per_lane(data["wtab"])
        src = proc.memory.allocate(n, "src")
        dst = proc.memory.allocate(n, "dst")
        proc.memory.load_region(
            src, in_arr.stream_image_per_lane(data["inputs"])
        )
        prog = StreamProgram("rw")
        t_load = prog.add_memory(load_op(in_arr.seq_read(), src))
        t_kernel = prog.add_kernel(
            KernelInvocation(
                kernel,
                {"in": in_arr.seq_read(), "out": out_arr.seq_write(),
                 "tab": tab_arr.inlane_readwrite(WTAB_RECORDS)},
                iterations=spec["iterations"],
            ),
            deps=[t_load],
        )
        prog.add_memory(store_op(out_arr.seq_write(name="st"), dst),
                        deps=[t_kernel])
        stats = proc.run_program(prog)
        outputs = out_arr.per_lane_from_stream_image(
            proc.memory.dump_region(dst), spec["iterations"]
        )
        tables = [tab_arr.read_per_lane(lane, WTAB_RECORDS)
                  for lane in range(LANES)]
        return outputs, tables, stats

    scalar = run("scalar")
    vector = run("vector")
    assert scalar[0] == vector[0]
    assert scalar[1] == vector[1]
    assert fingerprint(scalar[2]) == fingerprint(vector[2])
