"""Hypothesis configuration for the fuzzing suite.

Example counts are environment-scalable so the same tests serve two
jobs: the developer tier (default, a few dozen examples, runs inside
the normal test suite) and the CI fuzz job, which sets
``REPRO_FUZZ_EXAMPLES=1000`` for the deep sweep. ``derandomize=True``
fixes the random seed, so a CI failure reproduces locally with the
same environment variable — no flaky fuzzing.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro-fuzz",
    deadline=None,  # wall-clock budget is managed per-job, not per-example
    derandomize=True,
    database=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.filter_too_much,
                           HealthCheck.data_too_large],
)
settings.load_profile("repro-fuzz")
