"""Hypothesis strategies generating random well-formed stream programs.

A drawn *spec* is a plain dict of primitives (so Hypothesis shrinks it
well); :func:`build_kernel` deterministically turns it into a kernel,
and :func:`make_context`/:func:`program_data` produce matching input
data. The generated programs deliberately cover the vector backend's
hard cases:

* random iteration extents, including extents that straddle the
  engine's :data:`~repro.machine.vector.BLOCK_ITERATIONS` boundary;
* out-of-order and duplicate in-lane indices, cross-lane (global)
  indices, and predicated (conditional) indexed reads and writes;
* loop carries (serial cones) mixed with batchable dataflow;
* tagged algebra the engine lowers to ufuncs next to opaque Python
  payloads it must not touch, float constants, bools, division, and
  huge constants that overflow int64 (forcing the big-int fallback).
"""

import os
import random as pyrandom

from hypothesis import strategies as st

#: Example budget; the CI fuzz job raises this to 1000.
FUZZ_EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES", "25"))

from repro.kernel import KernelBuilder
from repro.kernel.contexts import ListContext

LANES = 8
MOD = 1 << 16
LUT_RECORDS = 16  # in-lane table, records per lane
XLUT_RECORDS = 32  # cross-lane table, global records
WTAB_RECORDS = 16  # in-lane write table, records per lane

#: Op vocabulary. Each drawn op is ``(tag, a, b, extra)`` with ``a``/
#: ``b`` picking operands (mod the live-value count) and ``extra``
#: parameterising the op. ``clamp`` lowers to the min/max algebra the
#: sparse apps use as a range guard; ``gather`` is their whole access
#: idiom (validity predicate + clamped in-lane indexed read) in one op.
TAGS = (
    "add", "sub", "mul", "xor", "mod", "select", "opaque", "float",
    "bigconst", "div", "pred", "lut", "lut_pred", "xlut", "wtab",
    "wtab_pred", "comm", "clamp", "gather",
)

#: Sparse index distributions (ISSUE 10): the shapes CSR column-index
#: streams actually take. ``empty_rows`` interleaves ``-1`` sentinel
#: runs — padding slots of rows with no nonzeros — which only a
#: predicated gather may skip.
SPARSE_DISTRIBUTIONS = (
    "sorted", "uniform", "clustered", "duplicate", "empty_rows",
)

_ops = st.lists(
    st.tuples(
        st.sampled_from(TAGS),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=6),
    ),
    min_size=1, max_size=14,
)


@st.composite
def kernel_specs(draw, max_iterations=80):
    """A random stream-program spec (kernel shape + data seed)."""
    return {
        "iterations": draw(st.integers(min_value=1,
                                       max_value=max_iterations)),
        "ops": draw(_ops),
        "use_carry": draw(st.booleans()),
        "carry_init": draw(st.integers(min_value=-4, max_value=100)),
        "data_seed": draw(st.integers(min_value=0, max_value=10**6)),
    }


@st.composite
def sparse_kernel_specs(draw, max_iterations=80):
    """A spec whose input stream is a sparse CSR-shaped index stream.

    The input words are drawn from one of the
    :data:`SPARSE_DISTRIBUTIONS` instead of uniform noise, and the op
    list always ends with a ``gather`` consuming the raw index stream —
    so every example drives the indexed SRF with exactly the index
    locality patterns the sparse apps produce, on top of whatever other
    random ops the base strategy drew.
    """
    spec = draw(kernel_specs(max_iterations=max_iterations))
    spec["index_distribution"] = draw(st.sampled_from(SPARSE_DISTRIBUTIONS))
    # Operand pick 0 is always the input-stream read (see build_kernel).
    spec["ops"] = list(spec["ops"]) + [
        ("gather", 0, 0, draw(st.integers(min_value=0, max_value=6))),
    ]
    return spec


def sparse_lane_indices(rng, count, records, distribution):
    """One lane's index stream under one sparse distribution."""
    if distribution == "sorted":
        return sorted(rng.randrange(records) for _ in range(count))
    if distribution == "uniform":
        return [rng.randrange(records) for _ in range(count)]
    if distribution == "clustered":
        # Power-law concentration: most indices hit a few records.
        return [int(records * rng.random() ** 4) for _ in range(count)]
    if distribution == "duplicate":
        pool = [rng.randrange(records)
                for _ in range(max(1, records // 8))]
        return [rng.choice(pool) for _ in range(count)]
    if distribution == "empty_rows":
        # CSR rows of 0-3 sorted entries; empty rows surface as -1
        # sentinel padding the gather predicate must mask off.
        indices = []
        while len(indices) < count:
            row_nnz = rng.randrange(4)
            if row_nnz == 0:
                indices.append(-1)
            else:
                indices.extend(sorted(
                    rng.randrange(records) for _ in range(row_nnz)
                ))
        return indices[:count]
    raise AssertionError(distribution)


# Deliberately opaque payloads (no ``algebra`` tag): the engines must
# evaluate these by calling them.
def _wrap_int(x):
    return x % MOD


def _as_int(x):
    return int(x) % MOD


def _mix(x, y):
    return (x * 3 + y) % MOD


def _divisor(x):
    return (int(x) % 13) + 1


def _nonneg(x):
    return x >= 0


def build_kernel(spec):
    """Build the kernel a spec describes; returns (kernel, streams)."""
    used = {tag for tag, _a, _b, _extra in spec["ops"]}
    b = KernelBuilder("fuzzed")
    in_s = b.istream("in")
    out_s = b.ostream("out")
    lut = (b.idxl_istream("lut")
           if used & {"lut", "lut_pred", "gather"} else None)
    xlut = b.idx_istream("xlut") if "xlut" in used else None
    wtab = (b.idxl_ostream("wtab")
            if used & {"wtab", "wtab_pred"} else None)

    values = [b.read(in_s)]
    carry = None
    if spec["use_carry"]:
        carry = b.carry(spec["carry_init"], "acc")
        values.append(carry)
    values.append(b.laneid())
    pred = None  # most recent boolean, for predicated accesses

    for tag, a_pick, b_pick, extra in spec["ops"]:
        a = values[a_pick % len(values)]
        c = values[b_pick % len(values)]
        if tag == "add":
            values.append(b.add(a, c))
        elif tag == "sub":
            values.append(b.sub(a, c))
        elif tag == "mul":
            values.append(b.logic(_wrap_int, b.mul(a, c)))
        elif tag == "xor":
            # xor is int-only in Python; coerce float/bool operands.
            values.append(b.xor(b.logic(_as_int, a),
                                b.logic(_as_int, c)))
        elif tag == "mod":
            values.append(b.mod(a, b.const(LUT_RECORDS + extra)))
        elif tag == "select":
            cond = pred if pred is not None and extra % 2 else a
            values.append(b.select(cond, a, c))
        elif tag == "opaque":
            values.append(b.logic(_mix, a, c))
        elif tag == "float":
            values.append(b.add(a, b.const(0.5 + extra * 0.125)))
        elif tag == "bigconst":
            # 2**59..2**65: crosses both int64-bound and int64-overflow
            # fallbacks in the vector engine.
            values.append(b.add(a, b.const(1 << (59 + extra))))
        elif tag == "div":
            values.append(b.div(a, b.arith(_divisor, c)))
        elif tag == "pred":
            pred = b.lt(a, b.const(extra * (MOD // 8)))
            values.append(pred)
        elif tag in ("lut", "lut_pred"):
            idx = b.mod(a, b.const(LUT_RECORDS))
            p = pred if tag == "lut_pred" and pred is not None else None
            values.append(b.idx_read(lut, idx, predicate=p))
        elif tag == "xlut":
            idx = b.mod(a, b.const(XLUT_RECORDS))
            values.append(b.idx_read(xlut, idx))
        elif tag in ("wtab", "wtab_pred"):
            idx = b.mod(a, b.const(WTAB_RECORDS))
            p = (pred if tag == "wtab_pred" and pred is not None
                 else None)
            b.idx_write(wtab, idx, b.logic(_wrap_int, c), predicate=p)
        elif tag == "clamp":
            values.append(b.clamp(a, b.const(-extra),
                                  b.const(extra * 7 + 1)))
        elif tag == "gather":
            # The sparse apps' access idiom end to end: sentinel
            # predicate + clamped index + predicated in-lane read.
            valid = b.logic(_nonneg, a)
            idx = b.clamp(b.logic(_as_int, a), b.const(0),
                          b.const(LUT_RECORDS - 1))
            values.append(b.idx_read(lut, idx, predicate=valid))
        elif tag == "comm":
            values.append(b.comm(a, b.mod(c, b.const(LANES))))
        else:  # pragma: no cover - exhaustive over TAGS
            raise AssertionError(tag)

    result = values[-1]
    if carry is not None:
        b.update(carry, b.logic(_wrap_int, b.add(carry, result)))
    b.write(out_s, result)
    kernel = b.build()
    return kernel, {"in": in_s, "out": out_s, "lut": lut,
                    "xlut": xlut, "wtab": wtab}


def program_data(spec):
    """Deterministic input/table data for a spec's kernel."""
    rng = pyrandom.Random(spec["data_seed"])
    iterations = spec["iterations"]
    distribution = spec.get("index_distribution")
    if distribution:
        inputs = [
            sparse_lane_indices(rng, iterations, LUT_RECORDS,
                                distribution)
            for _ in range(LANES)
        ]
    else:
        inputs = [
            [rng.randrange(-MOD, MOD) for _ in range(iterations)]
            for _ in range(LANES)
        ]
    return {
        "inputs": inputs,
        "lut": [rng.randrange(MOD) for _ in range(LUT_RECORDS)],
        "xlut": [rng.randrange(MOD) for _ in range(XLUT_RECORDS)],
        "wtab": [
            [rng.randrange(MOD) for _ in range(WTAB_RECORDS)]
            for _ in range(LANES)
        ],
    }


def make_context(spec, streams) -> ListContext:
    """A ListContext with the spec's data bound to the spec's streams."""
    data = program_data(spec)
    ctx = ListContext(LANES)
    ctx.bind_input(streams["in"], data["inputs"])
    if streams["lut"] is not None:
        ctx.bind_table(streams["lut"], [list(data["lut"])] * LANES)
    if streams["xlut"] is not None:
        ctx.bind_global(streams["xlut"], data["xlut"])
    if streams["wtab"] is not None:
        ctx.bind_table(streams["wtab"],
                       [list(t) for t in data["wtab"]])
    return ctx


def assert_same_typed(a, b, where=""):
    """Equality that also requires identical Python types, recursively.

    ``2 == 2.0 == True`` in Python, so plain ``==`` would let a backend
    silently turn ints into floats (or bools into ints); architectural
    state must match *bit for bit*, types included.
    """
    assert type(a) is type(b), f"{where}: {type(a)} != {type(b)}"
    if isinstance(a, (list, tuple)):
        assert len(a) == len(b), f"{where}: len {len(a)} != {len(b)}"
        for position, (x, y) in enumerate(zip(a, b)):
            assert_same_typed(x, y, f"{where}[{position}]")
    else:
        assert a == b, f"{where}: {a!r} != {b!r}"
