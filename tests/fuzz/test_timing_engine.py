"""Property-based object/columnar timing-engine equivalence.

Random stream programs from :mod:`tests.fuzz.strategies` run on the
cycle-accurate machine under both timing engines
(:attr:`MachineConfig.timing_engine`); outputs, final table contents,
and the *entire* ``ProgramStats`` must match bit for bit. A second
property drives the fallback boundary: the same random program under
configs the columnar engine refuses (faults, sanitizer, tracing) must
fall back to the object engine and still agree exactly.
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.config import isrf4_config
from repro.core import SrfArray
from repro.kernel import KernelInterpreter
from repro.machine import KernelInvocation, StreamProgram
from repro.machine.columnar import build_processor
from repro.memory import load_op, store_op
from tests.fuzz.strategies import (
    FUZZ_EXAMPLES, LANES, LUT_RECORDS, WTAB_RECORDS, XLUT_RECORDS,
    build_kernel, kernel_specs, make_context, program_data,
    sparse_kernel_specs,
)


def _run_on_engine(spec, kernel, streams, config):
    """Run the spec's program on the machine built for ``config``.

    Returns ``(engine, outputs, table contents or None, stats)``.
    """
    data = program_data(spec)
    iterations = spec["iterations"]
    proc = build_processor(config)
    n = iterations * LANES
    in_arr = SrfArray(proc.srf, n, "in")
    out_arr = SrfArray(proc.srf, n, "out")
    src = proc.memory.allocate(n, "src")
    dst = proc.memory.allocate(n, "dst")
    proc.memory.load_region(src,
                            in_arr.stream_image_per_lane(data["inputs"]))
    bindings = {"in": in_arr.seq_read(), "out": out_arr.seq_write()}
    wtab_arr = None
    if streams["lut"] is not None:
        lut_arr = SrfArray(proc.srf, LUT_RECORDS * LANES, "lut")
        lut_arr.fill_replicated(data["lut"])
        bindings["lut"] = lut_arr.inlane_read(LUT_RECORDS)
    if streams["xlut"] is not None:
        xlut_arr = SrfArray(proc.srf, XLUT_RECORDS, "xlut")
        xlut_arr.fill_stream_order(data["xlut"])
        bindings["xlut"] = xlut_arr.crosslane_read(XLUT_RECORDS)
    if streams["wtab"] is not None:
        wtab_arr = SrfArray(proc.srf, WTAB_RECORDS * LANES, "wtab")
        wtab_arr.fill_per_lane(data["wtab"])
        bindings["wtab"] = wtab_arr.inlane_write(WTAB_RECORDS)
    prog = StreamProgram("fuzz")
    t_load = prog.add_memory(load_op(in_arr.seq_read(), src))
    t_kernel = prog.add_kernel(
        KernelInvocation(kernel, bindings, iterations=iterations),
        deps=[t_load],
    )
    prog.add_memory(store_op(out_arr.seq_write(name="st"), dst),
                    deps=[t_kernel])
    stats = proc.run_program(prog)
    outputs = out_arr.per_lane_from_stream_image(
        proc.memory.dump_region(dst), iterations
    )
    tables = None
    if wtab_arr is not None:
        tables = [wtab_arr.read_per_lane(lane, WTAB_RECORDS)
                  for lane in range(LANES)]
    return proc.engine, outputs, tables, dataclasses.asdict(stats)


def _assert_engines_agree(spec):
    """Columnar vs object on a random program: everything identical —
    and the reference interpreter agrees on the outputs, so the two
    engines cannot be identically wrong about the data."""
    spec = dict(spec, iterations=spec["iterations"] * 4)
    kernel, streams = build_kernel(spec)

    ref_ctx = make_context(spec, streams)
    KernelInterpreter(kernel, LANES, ref_ctx).run(spec["iterations"])
    expected = ref_ctx.output("out")

    obj = _run_on_engine(spec, kernel, streams, isrf4_config())
    col = _run_on_engine(
        spec, kernel, streams, isrf4_config(timing_engine="columnar")
    )
    assert obj[0] == "object"
    assert col[0] == "columnar"  # engagement: no silent fallback
    assert obj[1] == expected
    assert col[1] == expected
    assert obj[2] == col[2]
    assert obj[3] == col[3]


@settings(max_examples=FUZZ_EXAMPLES)
@given(spec=kernel_specs(max_iterations=6))
def test_timing_engines_agree(spec):
    _assert_engines_agree(spec)


@settings(max_examples=FUZZ_EXAMPLES)
@given(spec=sparse_kernel_specs(max_iterations=6))
def test_timing_engines_agree_sparse(spec):
    """Engine agreement under CSR-shaped index streams: every sparse
    index distribution (including empty-row sentinels masked by the
    gather predicate) times identically on both engines."""
    _assert_engines_agree(spec)


#: Boundary overlays that must force the columnar request back onto the
#: object engine mid-flight — each hooks the per-cycle path.
_FALLBACK_OVERLAYS = (
    dict(fault_seed=11, fault_srf_flips=1, fault_horizon=5_000),
    dict(sanitize=True),
    dict(trace=True),
    dict(fast_forward=False),
)


@settings(max_examples=max(FUZZ_EXAMPLES // 5, 5))
@given(spec=kernel_specs(max_iterations=4),
       overlay=st.sampled_from(_FALLBACK_OVERLAYS))
def test_fallback_boundary_agrees(spec, overlay):
    """An ineligible config with timing_engine="columnar" must run the
    object engine and match the plain object run bit for bit."""
    spec = dict(spec, iterations=spec["iterations"] * 4)
    kernel, streams = build_kernel(spec)
    base = isrf4_config(**overlay)
    requested = isrf4_config(timing_engine="columnar", **overlay)
    obj = _run_on_engine(spec, kernel, streams, base)
    col = _run_on_engine(spec, kernel, streams, requested)
    assert obj[0] == "object"
    assert col[0] == "object"  # fell back, honestly
    assert obj[1:] == col[1:]
