"""The ``python -m repro.selfcheck`` CLI and the shared exit contract.

Both analysis CLIs (``repro.analyze``, ``repro.selfcheck``) follow the
convention in :mod:`repro.exitcodes`: 0 clean, 1 findings, 2 usage or
input error. CI scripts branch on these, so they are pinned here for
both tools.
"""

import json
import subprocess
import sys

import pytest

from repro.analyze.diagnostics import AnalysisReport, error
from repro.exitcodes import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE
from repro.selfcheck.__main__ import main

from tests.selfcheck.conftest import PACKAGE_ROOT, REPO_ROOT


class TestSelfcheckCli:
    def test_clean_tree_exits_0(self, capsys):
        code = main([
            PACKAGE_ROOT,
            "--baseline", f"{REPO_ROOT}/selfcheck-baseline.json",
            "--env-md", f"{REPO_ROOT}/ENV.md",
        ])
        assert code == EXIT_CLEAN
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_1(self, tree_copy, capsys):
        tree_copy.mutate("machine/replay.py", '"sanitize",', "")
        code = main([tree_copy.root])
        assert code == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "SC101" in out

    def test_bad_root_exits_2(self, capsys):
        assert main(["/no/such/tree"]) == EXIT_USAGE
        assert "not a directory" in capsys.readouterr().err

    def test_unknown_flag_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--frobnicate"])
        assert excinfo.value.code == EXIT_USAGE

    def test_bad_baseline_exits_2(self, capsys):
        code = main([PACKAGE_ROOT, "--baseline", "/no/such/baseline.json"])
        assert code == EXIT_USAGE
        assert "unreadable" in capsys.readouterr().err

    def test_json_report_shape(self, tree_copy, tmp_path, capsys):
        tree_copy.mutate("machine/replay.py", '"sanitize",', "")
        out = tmp_path / "report.json"
        code = main([tree_copy.root, "--json", str(out)])
        assert code == EXIT_FINDINGS
        payload = json.loads(out.read_text())
        assert payload["ok"] is False
        assert payload["scanned"] > 100
        codes = {row["code"] for row in payload["active"]}
        assert "SC101" in codes
        row = payload["active"][0]
        assert set(row) == {
            "severity", "code", "path", "line", "context", "message"
        }

    def test_write_baseline_then_clean(self, tree_copy, tmp_path, capsys):
        tree_copy.mutate("machine/replay.py", '"sanitize",', "")
        baseline = tmp_path / "baseline.json"
        assert main([
            tree_copy.root, "--baseline", str(baseline), "--write-baseline",
        ]) == EXIT_CLEAN
        assert main([
            tree_copy.root, "--baseline", str(baseline),
        ]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "baselined" in out

    def test_write_env_md_round_trips(self, tmp_path, capsys):
        target = tmp_path / "ENV.md"
        assert main([
            PACKAGE_ROOT, "--env-md", str(target), "--write-env-md",
        ]) == EXIT_CLEAN
        with open(f"{REPO_ROOT}/ENV.md", encoding="utf-8") as handle:
            assert target.read_text() == handle.read()


def test_module_entry_point_runs():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.selfcheck"],
        capture_output=True, text=True, timeout=300, cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


class TestSharedConvention:
    """repro.analyze honours the same exit codes (satellite contract)."""

    def test_analyze_findings_exit_1(self, monkeypatch, capsys):
        import repro.analyze.__main__ as analyze_main
        report = AnalysisReport(subject="fake")
        report.extend([error("fake-code", "synthetic failure")])
        monkeypatch.setattr(
            analyze_main, "check_app", lambda *a, **k: report
        )
        code = analyze_main.main(["--app", "Sort", "--config", "ISRF4"])
        assert code == EXIT_FINDINGS
        capsys.readouterr()

    def test_analyze_usage_exit_2(self):
        import repro.analyze.__main__ as analyze_main
        with pytest.raises(SystemExit) as excinfo:
            analyze_main.main(["--config", "NoSuchMachine"])
        assert excinfo.value.code == EXIT_USAGE
