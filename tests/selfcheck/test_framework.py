"""Framework behaviour: suppressions, contexts, baseline ratchet."""

import pytest

from repro.selfcheck import run_selfcheck
from repro.selfcheck.baseline import (
    BaselineError,
    load_baseline,
    render_baseline,
)
from repro.selfcheck.core import SourceFile, SourceTree
from repro.selfcheck.driver import ALL_CODES

from tests.selfcheck.conftest import active_codes


def write(tmp_path, rel, text):
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text)
    return str(tmp_path)


class TestSourceFile:
    def test_context_at_nested_scope(self, tmp_path):
        root = write(tmp_path, "mod.py", (
            "class Outer:\n"
            "    def method(self):\n"
            "        x = 1\n"
            "        return x\n"
            "\n"
            "def top():\n"
            "    pass\n"
        ))
        sf = SourceFile(root, "mod.py")
        assert sf.context_at(3) == "Outer.method"
        assert sf.context_at(7) == "top"
        assert sf.context_at(1) == "Outer"

    def test_suppression_in_string_is_ignored(self, tmp_path):
        root = write(tmp_path, "mod.py", (
            'DOC = "# selfcheck: disable=SC402"\n'
        ))
        sf = SourceFile(root, "mod.py")
        assert sf.suppressions == {}

    def test_suppression_comment_is_parsed(self, tmp_path):
        root = write(tmp_path, "mod.py", (
            "x = 1  # selfcheck: disable=SC301, SC302\n"
        ))
        sf = SourceFile(root, "mod.py")
        assert sf.suppressions == {1: {"SC301", "SC302"}}


class TestDriver:
    def test_parse_error_is_sc001(self, tmp_path):
        root = write(tmp_path, "broken.py", "def broken(:\n")
        report = run_selfcheck(root)
        assert active_codes(report) == {"SC001"}
        assert not report.ok

    def test_unknown_suppression_code_is_sc003(self, tmp_path):
        root = write(tmp_path, "mod.py", "x = 1  # selfcheck: disable=SC999\n")
        report = run_selfcheck(root)
        assert "SC003" in active_codes(report)

    def test_unused_suppression_is_sc002(self, tmp_path):
        root = write(tmp_path, "mod.py", "x = 1  # selfcheck: disable=SC301\n")
        report = run_selfcheck(root)
        assert "SC002" in active_codes(report)

    def test_suppression_absorbs_finding(self, tmp_path):
        # A bare write normally fires SC402 (outside store/); suppressed
        # it is silent, and the suppression itself counts as used.
        root = write(tmp_path, "mod.py", (
            "def dump(path, text):\n"
            '    with open(path, "w") as handle:'
            "  # selfcheck: disable=SC402\n"
            "        handle.write(text)\n"
        ))
        report = run_selfcheck(root)
        assert report.ok, [f.describe() for f in report.active]

    def test_every_emitted_code_is_declared(self, tmp_path):
        root = write(tmp_path, "mod.py", "import os\nos.rename('a', 'b')\n")
        report = run_selfcheck(root)
        for finding in report.active:
            assert finding.code in ALL_CODES


class TestBaseline:
    def _report(self, tmp_path, baseline=None):
        root = write(tmp_path, "mod.py", (
            "import os\n"
            "os.replace('a', 'b')\n"
        ))
        return run_selfcheck(root, baseline_path=baseline)

    def test_baseline_grandfathers_finding(self, tmp_path):
        report = self._report(tmp_path)
        assert active_codes(report) == {"SC401"}
        baseline = tmp_path / "baseline.json"
        baseline.write_text(render_baseline(report.active))
        again = self._report(tmp_path, baseline=str(baseline))
        assert again.ok
        assert [f.code for f in again.grandfathered] == ["SC401"]

    def test_stale_baseline_entry_is_sc004(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            '{"version": 1, "findings": [{"code": "SC401",'
            ' "path": "gone.py", "context": "<module>", "count": 1}]}\n'
        )
        report = self._report(tmp_path, baseline=str(baseline))
        assert {"SC401", "SC004"} <= active_codes(report)

    def test_ratchet_does_not_absorb_new_findings(self, tmp_path):
        # Baseline allows one SC401 in mod.py; a second one must fail.
        report = self._report(tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(render_baseline(report.active))
        root = write(tmp_path, "mod.py", (
            "import os\n"
            "os.replace('a', 'b')\n"
            "os.replace('c', 'd')\n"
        ))
        again = run_selfcheck(root, baseline_path=str(baseline))
        assert not again.ok
        assert [f.code for f in again.active] == ["SC401"]
        assert len(again.grandfathered) == 1

    def test_bad_baseline_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("not json")
        with pytest.raises(BaselineError):
            load_baseline(str(bad))
        bad.write_text('{"version": 99, "findings": []}')
        with pytest.raises(BaselineError):
            load_baseline(str(bad))
        with pytest.raises(BaselineError):
            load_baseline(str(tmp_path / "missing.json"))


def test_tree_skips_pycache(tmp_path):
    write(tmp_path, "mod.py", "x = 1\n")
    write(tmp_path, "__pycache__/junk.py", "x = 1\n")
    tree = SourceTree(str(tmp_path))
    assert [sf.rel for sf in tree.files] == ["mod.py"]
