"""Fixtures for the selfcheck suite: real-tree copies and mutations.

The mutation corpus works on a *copy* of the shipped ``src/repro``
tree: each test applies a small textual mutation (the kind of edit a
distracted human would make) and asserts the corresponding pass
catches it. Scanning a copy keeps the corpus honest — the passes run
their real cross-file logic, not a toy fixture shaped around the
implementation.
"""

import os
import shutil

import pytest

import repro

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(repro.__file__), os.pardir, os.pardir)
)
PACKAGE_ROOT = os.path.dirname(os.path.abspath(repro.__file__))


@pytest.fixture()
def tree_copy(tmp_path):
    """A scannable copy of the real package tree, plus a mutator."""
    root = str(tmp_path / "repro")
    shutil.copytree(
        PACKAGE_ROOT, root,
        ignore=shutil.ignore_patterns("__pycache__"),
    )

    class Tree:
        def __init__(self):
            self.root = root

        def path(self, rel):
            return os.path.join(root, rel.replace("/", os.sep))

        def read(self, rel):
            with open(self.path(rel), encoding="utf-8") as handle:
                return handle.read()

        def write(self, rel, text):
            target = self.path(rel)
            os.makedirs(os.path.dirname(target), exist_ok=True)
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(text)

        def mutate(self, rel, old, new, count=1):
            """Replace ``old`` with ``new``, asserting it was present."""
            text = self.read(rel)
            assert old in text, f"mutation anchor not found in {rel}: {old!r}"
            self.write(rel, text.replace(old, new, count))

        def append(self, rel, text):
            self.write(rel, self.read(rel) + text)

    return Tree()


def active_codes(report):
    return {finding.code for finding in report.active}
