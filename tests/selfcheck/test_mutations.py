"""Mutation corpus: every selfcheck pass fires on the edit it exists for.

Each test copies the shipped ``src/repro`` tree, applies one plausible
bad edit, and asserts the expected code goes active. This is the
suite's proof that the passes test *real* contracts — a pass that
cannot catch its own mutation is decoration, not enforcement.
"""

from repro.selfcheck import run_selfcheck

from tests.selfcheck.conftest import REPO_ROOT, active_codes


def scan(tree, **kwargs):
    return run_selfcheck(tree.root, **kwargs)


class TestFingerprintPass:
    def test_unclassified_field_is_sc101(self, tree_copy):
        # Delete a field from both classification sets — the exact
        # "forgot to classify" failure the acceptance criteria name.
        tree_copy.mutate("machine/replay.py", '"sanitize",', "")
        report = scan(tree_copy)
        assert "SC101" in active_codes(report)
        assert any(
            f.code == "SC101" and "sanitize" in f.message
            for f in report.active
        )

    def test_stale_timing_entry_is_sc102(self, tree_copy):
        tree_copy.mutate(
            "machine/replay.py", '"sanitize",', '"sanitize", "warp_core",'
        )
        assert "SC102" in active_codes(scan(tree_copy))

    def test_stale_functional_entry_is_sc103(self, tree_copy):
        tree_copy.mutate(
            "fingerprint.py", '"srf_mode",', '"srf_mode", "warp_core",'
        )
        assert "SC103" in active_codes(scan(tree_copy))

    def test_double_classification_is_sc104(self, tree_copy):
        # srf_mode is functional; also blacklisting it is a conflict.
        tree_copy.mutate(
            "machine/replay.py", '"sanitize",', '"sanitize", "srf_mode",'
        )
        assert "SC104" in active_codes(scan(tree_copy))

    def test_hand_enumerated_fingerprint_is_sc106(self, tree_copy):
        tree_copy.mutate(
            "fingerprint.py",
            "    fields = dataclasses.asdict(config)\n"
            "    return repr(sorted(fields.items()))",
            '    parts = [("srf_mode", config.srf_mode)]\n'
            "    return repr(parts)",
        )
        assert "SC106" in active_codes(scan(tree_copy))


class TestOverlayPass:
    def test_unregistered_env_read_is_sc201(self, tree_copy):
        tree_copy.append("harness/figures.py", (
            "\n\ndef secret_knob():\n"
            '    return os.environ.get("REPRO_SECRET_KNOB")\n'
        ))
        report = scan(tree_copy)
        assert any(
            f.code == "SC201" and "REPRO_SECRET_KNOB" in f.message
            for f in report.active
        )

    def test_unresolvable_env_name_is_sc202(self, tree_copy):
        tree_copy.append("harness/figures.py", (
            "\n\ndef dynamic_knob(suffix):\n"
            '    return os.environ.get("REPRO_" + suffix.upper())\n'
        ))
        assert "SC202" in active_codes(scan(tree_copy))

    def test_ghost_registry_entry_is_sc203(self, tree_copy):
        tree_copy.mutate("config/overlays.py",
                         'OVERLAYS: "tuple[EnvOverlay, ...]" = (', (
            'OVERLAYS: "tuple[EnvOverlay, ...]" = (\n'
            "    EnvOverlay(\n"
            '        name="REPRO_GHOST",\n'
            '        owner="repro.harness.figures",\n'
            '        doc="Registered but never read anywhere.",\n'
            '        example="REPRO_GHOST=1",\n'
            "        result_affecting=False,\n"
            "    ),"
        ))
        report = scan(tree_copy)
        assert any(
            f.code == "SC203" and "REPRO_GHOST" in f.message
            for f in report.active
        )

    def test_wrong_owner_is_sc203(self, tree_copy):
        tree_copy.mutate(
            "config/overlays.py",
            'owner="repro.harness.figures"',
            'owner="repro.kernel.interpreter"',
        )
        report = scan(tree_copy)
        assert any(
            f.code == "SC203" and "REPRO_SCALE" in f.message
            for f in report.active
        )

    def test_env_md_drift_is_sc204(self, tree_copy, tmp_path):
        env_md = tmp_path / "ENV.md"
        with open(f"{REPO_ROOT}/ENV.md", encoding="utf-8") as handle:
            env_md.write_text(handle.read() + "\nstray edit\n")
        report = scan(tree_copy, env_md_path=str(env_md))
        assert "SC204" in active_codes(report)

    def test_committed_env_md_matches_registry(self, tree_copy):
        report = scan(tree_copy, env_md_path=f"{REPO_ROOT}/ENV.md")
        assert "SC204" not in active_codes(report)

    def test_non_constant_registry_entry_is_sc205(self, tree_copy):
        tree_copy.mutate(
            "config/overlays.py",
            'name="REPRO_SCALE"',
            'name="REPRO_" + "SCALE"',
        )
        assert "SC205" in active_codes(scan(tree_copy))


class TestDeterminismPass:
    def test_wall_clock_is_sc301(self, tree_copy):
        tree_copy.append("machine/processor.py", (
            "\n\ndef _stamp():\n"
            "    import time\n"
            "    return time.time()\n"
        ))
        assert "SC301" in active_codes(scan(tree_copy))

    def test_global_rng_is_sc302(self, tree_copy):
        tree_copy.append("core/srf.py", (
            "\n\ndef _jitter():\n"
            "    import random\n"
            "    return random.random()\n"
        ))
        assert "SC302" in active_codes(scan(tree_copy))

    def test_unseeded_rng_construction_is_sc302(self, tree_copy):
        tree_copy.append("memory/dram.py", (
            "\n\ndef _rng():\n"
            "    import random\n"
            "    return random.Random()\n"
        ))
        assert "SC302" in active_codes(scan(tree_copy))

    def test_seeded_rng_is_allowed(self, tree_copy):
        tree_copy.append("memory/dram.py", (
            "\n\ndef _rng(seed):\n"
            "    import random\n"
            "    return random.Random(seed)\n"
        ))
        assert "SC302" not in active_codes(scan(tree_copy))

    def test_os_entropy_is_sc303(self, tree_copy):
        tree_copy.append("interconnect/crossbar.py", (
            "\n\ndef _token():\n"
            "    import os\n"
            "    return os.urandom(8)\n"
        ))
        assert "SC303" in active_codes(scan(tree_copy))

    def test_set_iteration_is_sc304(self, tree_copy):
        tree_copy.append("machine/executor.py", (
            "\n\ndef _drain(pending):\n"
            "    for item in set(pending):\n"
            "        yield item\n"
        ))
        assert "SC304" in active_codes(scan(tree_copy))

    def test_sorted_set_iteration_is_allowed(self, tree_copy):
        tree_copy.append("machine/executor.py", (
            "\n\ndef _drain(pending):\n"
            "    for item in sorted(set(pending)):\n"
            "        yield item\n"
        ))
        assert "SC304" not in active_codes(scan(tree_copy))

    def test_harness_may_read_clock(self, tree_copy):
        # The determinism scope is the simulated machine; wall-time in
        # the harness (provenance stamps, watchdogs) is legitimate.
        tree_copy.append("harness/figures.py", (
            "\n\ndef _stamp():\n"
            "    import time\n"
            "    return time.time()\n"
        ))
        assert "SC301" not in active_codes(scan(tree_copy))


class TestWritesPass:
    def test_rename_outside_store_is_sc401(self, tree_copy):
        tree_copy.append("harness/figures.py", (
            "\n\ndef _swap(a, b):\n"
            "    os.replace(a, b)\n"
        ))
        assert "SC401" in active_codes(scan(tree_copy))

    def test_bare_write_open_is_sc402(self, tree_copy):
        tree_copy.append("observe/export.py", (
            "\n\ndef _dump(path, text):\n"
            '    with open(path, "w") as handle:\n'
            "        handle.write(text)\n"
        ))
        assert "SC402" in active_codes(scan(tree_copy))

    def test_read_open_is_allowed(self, tree_copy):
        tree_copy.append("observe/export.py", (
            "\n\ndef _slurp(path):\n"
            "    with open(path, encoding='utf-8') as handle:\n"
            "        return handle.read()\n"
        ))
        assert "SC402" not in active_codes(scan(tree_copy))

    def test_bare_fsync_is_sc403(self, tree_copy):
        tree_copy.append("harness/figures.py", (
            "\n\ndef _sync(fd):\n"
            "    os.fsync(fd)\n"
        ))
        assert "SC403" in active_codes(scan(tree_copy))

    def test_store_is_exempt(self, tree_copy):
        tree_copy.append("store/atomic.py", (
            "\n\ndef _extra(a, b):\n"
            "    os.replace(a, b)\n"
        ))
        assert "SC401" not in active_codes(scan(tree_copy))


class TestFallbackPass:
    def test_unchecked_knob_is_sc501(self, tree_copy):
        # Remove the sanitize check from the eligibility gate while the
        # object engine still consults it: the matrix has a hole.
        tree_copy.mutate(
            "machine/columnar.py", "config.sanitize", "False"
        )
        report = scan(tree_copy)
        assert any(
            f.code == "SC501" and "sanitize" in f.message
            for f in report.active
        )

    def test_new_consulted_knob_is_sc501(self, tree_copy):
        # Add a knob, consult it in the object engine, forget the gate.
        tree_copy.mutate(
            "config/machine.py",
            "    sanitize: bool = False",
            "    sanitize: bool = False\n"
            "    turbo_mode: bool = False",
        )
        tree_copy.mutate("machine/replay.py", '"sanitize",',
                         '"sanitize", "turbo_mode",')
        tree_copy.append("machine/executor.py", (
            "\n\ndef _turbo(config):\n"
            "    return config.turbo_mode\n"
        ))
        report = scan(tree_copy)
        assert any(
            f.code == "SC501" and "turbo_mode" in f.message
            for f in report.active
        ), [f.describe() for f in report.active]

    def test_stale_modeled_entry_is_sc502(self, tree_copy):
        tree_copy.mutate(
            "machine/columnar.py",
            '"backend",', '"backend", "trace_path",',
        )
        # trace_path is an Observability knob no object-engine module
        # consults, so declaring it modeled is stale.
        report = scan(tree_copy)
        assert any(
            f.code == "SC502" and "trace_path" in f.message
            for f in report.active
        )

    def test_missing_gate_is_sc505(self, tree_copy):
        tree_copy.mutate(
            "machine/columnar.py",
            "def columnar_eligible", "def columnar_gate",
        )
        assert "SC505" in active_codes(scan(tree_copy))


def test_shipped_tree_is_clean():
    """The zero-false-positive gate: the real tree scans clean."""
    import repro
    import os
    report = run_selfcheck(
        os.path.dirname(os.path.abspath(repro.__file__)),
        baseline_path=f"{REPO_ROOT}/selfcheck-baseline.json",
        env_md_path=f"{REPO_ROOT}/ENV.md",
    )
    assert report.ok, [f.describe() for f in report.active]
    assert not report.grandfathered  # the shipped baseline is empty
