"""Durable store: WAL ordering, verification, quarantine, recovery."""

import os
import subprocess
import sys

from repro.store.chaos import CHAOS_ENV
from repro.store.durable import (
    COMPACTION_FLOOR,
    LOCK_NAME,
    MANIFEST_NAME,
    QUARANTINE_CAP_ENV,
    DurableStore,
    default_quarantine_cap,
)


def make(tmp_path, **kwargs):
    kwargs.setdefault("fsync", False)
    return DurableStore(str(tmp_path), **kwargs)


def dead_pid():
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


class TestRoundtrip:
    def test_put_get(self, tmp_path):
        store = make(tmp_path)
        assert store.put_bytes("alpha", b"payload")
        assert store.get_bytes("alpha") == b"payload"
        assert store.contains("alpha")

    def test_missing_key_is_a_miss(self, tmp_path):
        store = make(tmp_path)
        assert store.get_bytes("ghost") is None
        assert not store.contains("ghost")

    def test_overwrite(self, tmp_path):
        store = make(tmp_path)
        store.put_bytes("key", b"old")
        store.put_bytes("key", b"new")
        assert store.get_bytes("key") == b"new"

    def test_fresh_instance_reads_previous_writes(self, tmp_path):
        make(tmp_path).put_bytes("key", b"persisted")
        assert make(tmp_path).get_bytes("key") == b"persisted"

    def test_suffix_namespacing(self, tmp_path):
        store = make(tmp_path, suffix=".trace.gz")
        store.put_bytes("key", b"data")
        assert os.path.exists(tmp_path / "key.trace.gz")

    def test_delete(self, tmp_path):
        store = make(tmp_path)
        store.put_bytes("key", b"data")
        assert store.delete("key")
        assert store.get_bytes("key") is None
        assert not store.delete("key")


class TestWriteAheadOrdering:
    def test_entry_is_journaled_before_visible(self, tmp_path):
        store = make(tmp_path)
        store.put_bytes("key", b"data")
        ops = [r["op"] for r in store.journal.records()]
        assert "put" in ops
        record = [r for r in store.journal.records()
                  if r.get("key") == "key"][0]
        assert record["size"] == 4

    def test_no_tmp_left_after_put(self, tmp_path):
        store = make(tmp_path)
        store.put_bytes("key", b"data")
        assert store.stats()["tmp"] == 0

    def test_unjournaled_entry_quarantined_on_read(self, tmp_path):
        """A foreign file the manifest never heard of is untrusted."""
        store = make(tmp_path)
        store.put_bytes("real", b"data")  # directory now exists
        with open(tmp_path / "foreign.pkl", "wb") as handle:
            handle.write(b"who wrote this?")
        assert store.get_bytes("foreign") is None
        assert not os.path.exists(tmp_path / "foreign.pkl")
        assert os.path.exists(tmp_path / "foreign.pkl.bad")


class TestVerification:
    def test_corrupt_entry_quarantined(self, tmp_path):
        store = make(tmp_path)
        store.put_bytes("key", b"good data")
        with open(store.path("key"), "wb") as handle:
            handle.write(b"bit rot")
        assert store.get_bytes("key") is None
        assert store.quarantine_count() == 1
        assert store.get_bytes("key") is None  # stays a miss

    def test_truncated_entry_quarantined(self, tmp_path):
        store = make(tmp_path)
        store.put_bytes("key", b"x" * 100)
        with open(store.path("key"), "r+b") as handle:
            handle.truncate(10)
        assert store.get_bytes("key") is None
        assert store.quarantine_count() == 1

    def test_good_entries_unaffected_by_bad_neighbours(self, tmp_path):
        store = make(tmp_path)
        store.put_bytes("good", b"fine")
        store.put_bytes("bad", b"doomed")
        with open(store.path("bad"), "wb") as handle:
            handle.write(b"garbage")
        assert store.get_bytes("bad") is None
        assert store.get_bytes("good") == b"fine"


class TestQuarantineCap:
    def test_cap_bounds_bad_files(self, tmp_path):
        store = make(tmp_path, quarantine_cap=3)
        for i in range(6):
            store.put_bytes(f"key{i}", b"data")
            with open(store.path(f"key{i}"), "wb") as handle:
                handle.write(b"corrupt")
            assert store.get_bytes(f"key{i}") is None
        assert store.quarantine_count() <= 3

    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(QUARANTINE_CAP_ENV, "7")
        assert default_quarantine_cap() == 7
        assert make(tmp_path).quarantine_cap == 7

    def test_env_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv(QUARANTINE_CAP_ENV, "lots")
        assert default_quarantine_cap() == 32


class TestClear:
    def test_counts_only_real_entries(self, tmp_path):
        store = make(tmp_path)
        store.put_bytes("a", b"1")
        store.put_bytes("b", b"2")
        with open(tmp_path / ".c.12345.tmp", "wb") as handle:
            handle.write(b"staging")
        with open(tmp_path / "d.pkl.bad", "wb") as handle:
            handle.write(b"quarantined")
        assert store.clear() == 2
        leftover = set(os.listdir(tmp_path))
        assert leftover <= {MANIFEST_NAME, LOCK_NAME}
        assert store.journal.records() == [{"op": "clear"}]


class TestRecovery:
    def test_dead_writer_tmp_swept(self, tmp_path):
        store = make(tmp_path)
        store.put_bytes("real", b"data")
        stale = tmp_path / f".victim.{dead_pid()}.tmp"
        with open(stale, "wb") as handle:
            handle.write(b"half-written")
        report = store.recover()
        assert report["stale_tmp"] == 1
        assert not os.path.exists(stale)

    def test_live_writer_tmp_kept(self, tmp_path):
        store = make(tmp_path)
        store.put_bytes("real", b"data")
        live = tmp_path / f".inflight.{os.getpid()}.tmp"
        with open(live, "wb") as handle:
            handle.write(b"still being written")
        report = store.recover()
        assert report["stale_tmp"] == 0
        assert os.path.exists(live)

    def test_torn_manifest_tail_repaired(self, tmp_path):
        store = make(tmp_path)
        store.put_bytes("key", b"data")
        with open(store.journal.path, "ab") as handle:
            handle.write(b"0123456789abcdef {torn")  # no newline
        report = store.recover()
        assert report["torn_journal_records"] == 1
        assert store.journal.read()[1] == 0  # clean after repair
        assert store.get_bytes("key") == b"data"

    def test_unjournaled_entries_quarantined(self, tmp_path):
        store = make(tmp_path)
        store.put_bytes("real", b"data")
        with open(tmp_path / "foreign.pkl", "wb") as handle:
            handle.write(b"unjournaled")
        report = store.recover()
        assert report["unjournaled"] == 1
        assert store.fsck()["unjournaled"] == 0

    def test_recovery_is_idempotent(self, tmp_path):
        store = make(tmp_path)
        store.put_bytes("key", b"data")
        store.recover()
        report = store.recover()
        assert report == {"stale_tmp": 0, "torn_journal_records": 0,
                          "unjournaled": 0, "compacted": False}

    def test_compaction_when_manifest_dwarfs_entries(self, tmp_path):
        store = make(tmp_path)
        for _ in range(COMPACTION_FLOOR + 10):
            store.put_bytes("key", b"data")
        report = store.recover()
        assert report["compacted"]
        assert len(store.journal.records()) == 1
        assert store.get_bytes("key") == b"data"


class TestFsck:
    def test_clean_store(self, tmp_path):
        store = make(tmp_path)
        store.put_bytes("a", b"1")
        store.put_bytes("b", b"2")
        report = store.fsck()
        assert report["entries"] == 2
        assert report["checksum_failures"] == 0
        assert report["unjournaled"] == 0
        assert report["tmp"] == 0

    def test_detects_corruption_without_repairing(self, tmp_path):
        store = make(tmp_path)
        store.put_bytes("key", b"data")
        with open(store.path("key"), "wb") as handle:
            handle.write(b"flip")
        report = store.fsck()
        assert report["checksum_failures"] == 1
        assert os.path.exists(store.path("key"))  # fsck is read-only


class TestChaosInjection:
    def test_enospc_put_fails_cleanly(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "seed=1,enospc=1.0")
        store = make(tmp_path)
        assert not store.put_bytes("key", b"data")
        assert store.get_bytes("key") is None
        assert store.stats() == {"entries": 0, "quarantined": 0,
                                 "tmp": 0}

    def test_torn_commit_detected_on_read(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "seed=1,torn=1.0")
        store = make(tmp_path)
        assert store.put_bytes("key", b"x" * 64)  # commit "succeeds"
        assert store.get_bytes("key") is None  # ...but never served
        assert store.quarantine_count() == 1

    def test_chaos_disabled_by_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        store = make(tmp_path)
        assert store._chaos is None
