"""Checksummed append-only journal: torn tails, corruption, rewrite."""

import os

import pytest

from repro.store.journal import (
    CHECKSUM_HEX,
    Journal,
    decode_line,
    encode_record,
)


class TestRecordCodec:
    def test_roundtrip(self):
        record = {"op": "put", "key": "abc", "size": 3}
        assert decode_line(encode_record(record)) == record

    def test_line_shape(self):
        line = encode_record({"a": 1})
        checksum, _, rest = line.partition(b" ")
        assert len(checksum) == CHECKSUM_HEX
        assert rest.endswith(b"\n")

    def test_missing_newline_is_torn(self):
        line = encode_record({"a": 1})
        assert decode_line(line[:-1]) is None

    def test_truncated_payload_fails_checksum(self):
        line = encode_record({"a": 1})
        assert decode_line(line[:-3] + b"\n") is None

    def test_flipped_byte_fails_checksum(self):
        line = bytearray(encode_record({"key": "value"}))
        line[CHECKSUM_HEX + 3] ^= 0xFF
        assert decode_line(bytes(line)) is None

    def test_non_dict_payload_rejected(self):
        import hashlib
        import json

        payload = json.dumps([1, 2, 3]).encode()
        checksum = hashlib.sha256(payload).hexdigest()[:CHECKSUM_HEX]
        line = checksum.encode() + b" " + payload + b"\n"
        assert decode_line(line) is None


class TestJournal:
    def make(self, tmp_path):
        return Journal(str(tmp_path / "test.journal"), fsync=False)

    def test_missing_file_reads_empty(self, tmp_path):
        journal = self.make(tmp_path)
        assert not journal.exists()
        assert journal.read() == ([], 0)

    def test_append_then_read(self, tmp_path):
        journal = self.make(tmp_path)
        records = [{"n": i} for i in range(5)]
        for record in records:
            journal.append(record)
        assert journal.read() == (records, 0)

    def test_torn_tail_dropped_not_raised(self, tmp_path):
        journal = self.make(tmp_path)
        journal.append({"n": 0})
        journal.append({"n": 1})
        # Chop the final line mid-payload: a crash during append.
        with open(journal.path, "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            handle.truncate(handle.tell() - 4)
        assert journal.read() == ([{"n": 0}], 1)

    def test_corrupt_middle_stops_the_read(self, tmp_path):
        journal = self.make(tmp_path)
        for i in range(3):
            journal.append({"n": i})
        with open(journal.path, "rb") as handle:
            lines = handle.readlines()
        lines[1] = b"garbage line\n"
        with open(journal.path, "wb") as handle:
            handle.writelines(lines)
        records, dropped = journal.read()
        assert records == [{"n": 0}]
        assert dropped == 2  # the bad line and everything after it

    def test_rewrite_replaces_contents(self, tmp_path):
        journal = self.make(tmp_path)
        for i in range(10):
            journal.append({"n": i})
        journal.rewrite([{"compacted": True}])
        assert journal.read() == ([{"compacted": True}], 0)
        leftovers = [name for name in os.listdir(tmp_path)
                     if name.endswith(".tmp")]
        assert leftovers == []

    def test_append_after_rewrite(self, tmp_path):
        journal = self.make(tmp_path)
        journal.rewrite([{"n": 0}])
        journal.append({"n": 1})
        assert journal.records() == [{"n": 0}, {"n": 1}]

    def test_append_creates_parent_directory(self, tmp_path):
        journal = Journal(str(tmp_path / "deep" / "dir" / "j.log"),
                          fsync=False)
        journal.append({"ok": True})
        assert journal.records() == [{"ok": True}]

    @pytest.mark.parametrize("count", [0, 1, 7])
    def test_records_helper(self, tmp_path, count):
        journal = self.make(tmp_path)
        for i in range(count):
            journal.append({"n": i})
        assert len(journal.records()) == count
