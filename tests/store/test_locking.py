"""Advisory file locking: contention, reentrancy, stale takeover."""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.errors import LockTimeout
from repro.store.locking import FileLock, pid_alive


def dead_pid():
    """A pid value that belonged to a real — now reaped — process."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


class TestPidAlive:
    def test_own_pid(self):
        assert pid_alive(os.getpid())

    def test_nonpositive(self):
        assert not pid_alive(0)
        assert not pid_alive(-1)

    def test_reaped_child(self):
        assert not pid_alive(dead_pid())


class TestFileLock:
    def make(self, tmp_path, **kwargs):
        return FileLock(str(tmp_path / "test.lock"), **kwargs)

    def test_acquire_release(self, tmp_path):
        lock = self.make(tmp_path)
        assert not lock.held
        with lock:
            assert lock.held
        assert not lock.held

    def test_reentrant_within_instance(self, tmp_path):
        lock = self.make(tmp_path)
        with lock:
            with lock:
                assert lock.held
            assert lock.held  # inner exit must not release the outer
        assert not lock.held

    def test_owner_record_stamped(self, tmp_path):
        lock = self.make(tmp_path)
        with lock:
            owner = lock.owner()
            assert owner is not None
            assert owner["pid"] == os.getpid()
            assert "host" in owner

    def test_distinct_instances_exclude(self, tmp_path):
        first = self.make(tmp_path)
        second = self.make(tmp_path, timeout=0.2)
        with first:
            with pytest.raises(LockTimeout) as info:
                second.acquire()
            # The exception names the holder for diagnostics.
            assert info.value.owner is not None
            assert info.value.owner["pid"] == os.getpid()
            assert str(os.getpid()) in str(info.value)
        with second:  # released first: acquirable again
            assert second.held

    def test_cross_process_contention_and_crash_release(self, tmp_path):
        """A dying flock holder releases the lock automatically."""
        lock_path = str(tmp_path / "test.lock")
        holder = subprocess.Popen(
            [sys.executable, "-c", textwrap.dedent("""
                import fcntl, os, sys, time
                fd = os.open(sys.argv[1], os.O_RDWR | os.O_CREAT, 0o644)
                fcntl.flock(fd, fcntl.LOCK_EX)
                print("locked", flush=True)
                time.sleep(60)
            """), lock_path],
            stdout=subprocess.PIPE, text=True,
        )
        try:
            assert holder.stdout.readline().strip() == "locked"
            waiter = FileLock(lock_path, timeout=0.2)
            with pytest.raises(LockTimeout):
                waiter.acquire()
            holder.kill()
            holder.wait()
            # The kernel released the dead holder's flock: no takeover
            # protocol needed in the primary mode.
            waiter.timeout = 5.0
            with waiter:
                assert waiter.held
        finally:
            if holder.poll() is None:
                holder.kill()
                holder.wait()


class TestExclusiveFallback:
    """The O_EXCL lock-file mode used where flock is unsupported."""

    def make(self, tmp_path):
        return FileLock(str(tmp_path / "test.lock"))

    def test_acquires_when_free(self, tmp_path):
        lock = self.make(tmp_path)
        assert lock._try_acquire_exclusive()
        assert lock.owner()["pid"] == os.getpid()
        lock._depth = 1
        lock.release()
        # Exclusive mode removes the file on release so waiters can
        # recreate it.
        assert not os.path.exists(lock.path)

    def test_live_holder_blocks(self, tmp_path):
        lock = self.make(tmp_path)
        with open(lock.path, "w") as handle:
            json.dump({"pid": os.getpid(), "host": "here"}, handle)
        assert not lock._try_acquire_exclusive()

    def test_dead_holder_taken_over(self, tmp_path):
        lock = self.make(tmp_path)
        with open(lock.path, "w") as handle:
            json.dump({"pid": dead_pid(), "host": "gone"}, handle)
        assert lock._try_acquire_exclusive()
        assert lock.owner()["pid"] == os.getpid()

    def test_garbage_owner_record_taken_over(self, tmp_path):
        lock = self.make(tmp_path)
        with open(lock.path, "wb") as handle:
            handle.write(b"\x00torn write junk")
        assert lock._try_acquire_exclusive()
        assert lock.owner()["pid"] == os.getpid()
