"""High-level LookupTable construct: one kernel, machine-chosen lowering."""

import pytest

from repro.config import all_configs, base_config, isrf4_config
from repro.core import SrfArray
from repro.errors import ExecutionError
from repro.highlevel import LookupTable
from repro.kernel import KernelBuilder
from repro.machine import KernelInvocation, StreamProcessor, StreamProgram
from repro.memory import load_op, store_op

LANES = 8


def run_lookup_app(config, n=64):
    """out[i] = in[i] + table[in[i]] using the high-level construct."""
    proc = StreamProcessor(config)
    table_values = [3 * v + 1 for v in range(32)]
    table = LookupTable(proc, table_values, "LUT")

    b = KernelBuilder("hl_lookup")
    in_s = b.istream("in")
    out_s = b.ostream("out")
    lut = table.declare(b)
    a = b.read(in_s)
    v = table.lookup(b, lut, a)
    b.write(out_s, b.add(a, v))
    kernel = b.build()

    inputs = [i % 32 for i in range(n)]
    in_arr = SrfArray(proc.srf, n, "in")
    out_arr = SrfArray(proc.srf, n, "out")
    src = proc.memory.allocate(n, "src")
    dst = proc.memory.allocate(n, "dst")
    proc.memory.load_region(src, inputs)

    prog = StreamProgram("hl")
    t_in = prog.add_memory(load_op(in_arr.seq_read(), src))
    # Per-lane index trace (what each lane will look up, in order).
    m = 4
    per_lane = [[] for _ in range(LANES)]
    for k, value in enumerate(inputs):
        lane = (k // m) % LANES
        per_lane[lane].append(value)
    binding, deps = table.prepare(prog, rep=0, per_lane_indices=per_lane)
    t_k = prog.add_kernel(KernelInvocation(kernel, {
        "in": in_arr.seq_read(), "LUT": binding,
        "out": out_arr.seq_write(),
    }, iterations=n // LANES), deps=[t_in] + deps)
    prog.add_memory(store_op(out_arr.seq_write(name="st"), dst),
                    deps=[t_k])
    stats = proc.run_program(prog)
    expected = [v + table_values[v] for v in inputs]
    return proc.memory.dump_region(dst), expected, stats


class TestLookupTableLowering:
    @pytest.mark.parametrize("name", ["Base", "ISRF1", "ISRF4", "Cache"])
    def test_same_kernel_correct_on_every_machine(self, name):
        results, expected, _ = run_lookup_app(all_configs()[name])
        assert results == expected

    def test_indexed_lowering_avoids_offchip_lookups(self):
        _, _, indexed_stats = run_lookup_app(isrf4_config())
        _, _, base_stats = run_lookup_app(base_config())
        # Base gathers one word per lookup; indexed only moves in/out.
        assert base_stats.offchip_words > 1.4 * indexed_stats.offchip_words

    def test_indexed_lowering_uses_indexed_srf(self):
        _, _, stats = run_lookup_app(isrf4_config())
        assert stats.kernel_runs[0].inlane_words == 64

    def test_sequential_lowering_requires_index_trace(self):
        proc = StreamProcessor(base_config())
        table = LookupTable(proc, [1, 2, 3], "t")
        prog = StreamProgram("p")
        with pytest.raises(ExecutionError):
            table.prepare(prog, rep=0, per_lane_indices=None)

    def test_wrong_lane_count_rejected(self):
        proc = StreamProcessor(base_config())
        table = LookupTable(proc, [1, 2, 3], "t")
        prog = StreamProgram("p")
        with pytest.raises(ExecutionError):
            table.prepare(prog, rep=0, per_lane_indices=[[0]] * 3)

    def test_indexed_prepare_ignores_trace(self):
        proc = StreamProcessor(isrf4_config())
        table = LookupTable(proc, list(range(16)), "t")
        prog = StreamProgram("p")
        binding, deps = table.prepare(prog, rep=0)
        assert deps == []
        assert binding.length_records == 16
