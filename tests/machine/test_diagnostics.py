"""Performance-diagnostics: bound analysis matches the paper's reasoning."""


from repro.config import base_config, isrf1_config, isrf4_config
from repro.harness import run_benchmark
from repro.kernel import KernelBuilder, ModuloScheduler
from repro.machine.diagnostics import (
    analyze_schedule,
    diagnose_kernel_run,
    diagnose_program,
)


class TestScheduleBounds:
    def test_alu_bound_kernel(self):
        b = KernelBuilder("alu_heavy")
        in_s = b.istream("i")
        out = b.ostream("o")
        x = b.read(in_s)
        acc = x
        for _ in range(16):
            acc = b.mul(acc, x)
        b.write(out, acc)
        schedule = ModuloScheduler().schedule(b.build())
        bounds = analyze_schedule(schedule)
        assert bounds.alu_bound == 4  # 16 muls on 4 ALUs
        assert bounds.binding_constraint == "ALU issue"

    def test_divider_bound_kernel(self):
        b = KernelBuilder("divider")
        in_s = b.istream("i")
        out = b.ostream("o")
        b.write(out, b.div(b.const(1.0), b.read(in_s)))
        bounds = analyze_schedule(ModuloScheduler().schedule(b.build()))
        assert bounds.divider_bound == 16
        assert bounds.binding_constraint == "divider"

    def test_recurrence_bound_kernel(self):
        b = KernelBuilder("carried")
        lut = b.idxl_istream("t")
        out = b.ostream("o")
        ptr = b.carry(0, "ptr")
        v = b.idx_read(lut, ptr)
        b.update(ptr, b.logic(lambda x: int(x) % 8, v))
        b.write(out, v)
        schedule = ModuloScheduler().schedule(b.build(),
                                              inlane_separation=8)
        bounds = analyze_schedule(schedule)
        assert bounds.binding_constraint == "loop-carried recurrence"
        assert bounds.recurrence_bound == schedule.ii

    def test_index_port_bound_kernel(self):
        b = KernelBuilder("lookups")
        in_s = b.istream("i")
        lut = b.idxl_istream("t")
        out = b.ostream("o")
        x = b.read(in_s)
        acc = x
        for _ in range(6):
            acc = b.logic(lambda p, q: p + q, acc, b.idx_read(lut, x))
        b.write(out, acc)
        bounds = analyze_schedule(ModuloScheduler().schedule(b.build()))
        assert bounds.index_port_bounds["t"] == 6
        assert bounds.binding_constraint == "indexed-stream port"

    def test_describe_mentions_binding_constraint(self):
        b = KernelBuilder("k")
        out = b.ostream("o")
        b.write(out, b.const(1))
        bounds = analyze_schedule(ModuloScheduler().schedule(b.build()))
        assert "bound by" in bounds.describe()


class TestRunDiagnosis:
    def test_rijndael_isrf1_is_srf_bound(self):
        result = run_benchmark("Rijndael", isrf1_config(), "small")
        diagnoses = [
            diagnose_kernel_run(r) for r in result.stats.kernel_runs
        ]
        assert any("SRF-bandwidth" in d.classification for d in diagnoses)

    def test_isrf4_stalls_much_less_than_isrf1(self):
        r1 = run_benchmark("Rijndael", isrf1_config(), "small")
        r4 = run_benchmark("Rijndael", isrf4_config(), "small")
        frac1 = max(diagnose_kernel_run(r).stall_fraction
                    for r in r1.stats.kernel_runs)
        frac4 = max(diagnose_kernel_run(r).stall_fraction
                    for r in r4.stats.kernel_runs)
        assert frac4 < 0.6 * frac1

    def test_sort_kernels_loop_bound(self):
        result = run_benchmark("Sort", isrf4_config(), "small")
        diagnoses = [
            diagnose_kernel_run(r) for r in result.stats.kernel_runs
        ]
        assert all(d.classification == "loop bound" for d in diagnoses)


class TestProgramDiagnosis:
    def test_base_rijndael_memory_bound(self):
        config = base_config()
        result = run_benchmark("Rijndael", config, "small")
        diagnosis = diagnose_program(result.stats, config)
        assert diagnosis.classification == "memory-bandwidth bound"
        assert diagnosis.dram_utilization > 0.6

    def test_isrf4_rijndael_kernel_bound(self):
        config = isrf4_config()
        result = run_benchmark("Rijndael", config, "small")
        diagnosis = diagnose_program(result.stats, config)
        assert diagnosis.classification == "kernel (compute/SRF) bound"
        assert diagnosis.dram_utilization < 0.4

    def test_describe_is_readable(self):
        config = base_config()
        result = run_benchmark("Sort", config, "small")
        text = diagnose_program(result.stats, config).describe()
        assert "program:" in text
        assert "II=" in text
