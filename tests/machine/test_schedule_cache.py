"""Regression: the schedule cache must key on the kernel object itself,
not on ``id(kernel)``.

CPython recycles object addresses, so a cache keyed on a bare ``id`` is
only ever correct while something else happens to keep the kernel
alive; any eviction or lifetime change turns it into a stale-schedule
bug where a new kernel is served a dead kernel's slots — op ids the new
kernel does not even contain. The fixed cache keys on the kernel object
(kernels hash by identity), which both pins the kernel for the
processor's lifetime and makes id recycling structurally impossible.
"""

import gc
import weakref

from repro.config import isrf4_config
from repro.kernel import KernelBuilder
from repro.machine import StreamProcessor


def _make_kernel(adds: int):
    builder = KernelBuilder(f"chain{adds}")
    in_s = builder.istream("in")
    out_s = builder.ostream("out")
    value = builder.read(in_s)
    for _ in range(adds):
        value = builder.add(value, builder.const(1))
    builder.write(out_s, value)
    return builder.build()


def test_cache_keys_on_kernel_not_recyclable_id():
    # The regression proper: with the old code the key held id(kernel),
    # an int that outlives the kernel and can be recycled; the fix keys
    # on the kernel object itself.
    proc = StreamProcessor(isrf4_config())
    kernel = _make_kernel(1)
    proc.schedule_kernel(kernel)
    assert any(key[0] is kernel for key in proc._schedule_cache), (
        "schedule cache must key on the kernel object, not id(kernel): "
        "ids of collected kernels are recycled and alias new kernels"
    )


def test_cache_pins_kernel_against_id_reuse():
    proc = StreamProcessor(isrf4_config())
    first = _make_kernel(1)
    proc.schedule_kernel(first)
    stale_id = id(first)
    kernel_ref = weakref.ref(first)
    del first
    gc.collect()
    # The cache key itself must keep the kernel alive — that is what
    # makes serving a recycled-id kernel a stale schedule impossible.
    assert kernel_ref() is not None
    # Try to provoke reuse of the address anyway; structurally different
    # kernels allocated afterwards must never see the cached schedule.
    candidate = None
    for _ in range(200):
        candidate = _make_kernel(4)
        if id(candidate) == stale_id:
            break
        candidate = None
    if candidate is None:
        candidate = _make_kernel(4)
    schedule = proc.schedule_kernel(candidate)
    assert schedule.kernel is candidate
    assert set(schedule.slots) == {op.op_id for op in candidate.ops}


def test_distinct_kernels_get_distinct_schedules():
    proc = StreamProcessor(isrf4_config())
    small = _make_kernel(1)
    big = _make_kernel(6)
    assert proc.schedule_kernel(small) is not proc.schedule_kernel(big)
    # Same kernel object: the cached schedule is returned as-is.
    assert proc.schedule_kernel(small) is proc.schedule_kernel(small)
