"""Property tests over randomly generated kernels.

Two system-level invariants:

1. every random kernel gets a *legal* modulo schedule at every
   address-data separation (dependences, resources, stream order,
   buffer capacity);
2. running a random kernel on the cycle-accurate machine produces
   exactly the values the reference interpreter produces — i.e. the
   timing machinery (stream buffers, FIFOs, reorder buffers,
   arbitration, stalls) never corrupts data.
"""

import random as pyrandom

from hypothesis import given, settings, strategies as st

from repro.config import isrf4_config
from repro.core import SrfArray
from repro.kernel import KernelBuilder, KernelInterpreter, ModuloScheduler
from repro.kernel.contexts import ListContext
from repro.kernel.resources import ClusterResources, resource_key
from repro.machine import KernelInvocation, StreamProcessor, StreamProgram
from repro.memory import load_op, store_op

LANES = 8
TABLE_RECORDS = 16
MOD = 1 << 16


def build_random_kernel(seed: int, ops_count: int, use_carry: bool,
                        lookups: int):
    """A random integer dataflow kernel over one input/output stream and
    an optional lookup table, deterministic in ``seed``."""
    rng = pyrandom.Random(seed)
    b = KernelBuilder(f"rand{seed}")
    in_s = b.istream("in")
    lut = b.idxl_istream("lut") if lookups else None
    out = b.ostream("out")
    values = [b.read(in_s)]
    if use_carry:
        carry = b.carry(1, "acc")
        values.append(carry)
    for k in range(ops_count):
        op_kind = rng.choice(["add", "mul", "logic", "select"])
        a = rng.choice(values)
        c = rng.choice(values)
        if op_kind == "add":
            values.append(b.logic(lambda x, y: (x + y) % MOD, a, c))
        elif op_kind == "mul":
            values.append(b.mul(a, b.const(rng.randrange(1, 7))))
            values.append(b.logic(lambda x: x % MOD, values[-1]))
        elif op_kind == "logic":
            values.append(b.logic(lambda x, y: (x ^ y) % MOD, a, c))
        else:
            cond = b.logic(lambda x: x % 2, a)
            values.append(b.select(cond, a, c))
    for _ in range(lookups):
        idx = b.logic(lambda x: int(x) % TABLE_RECORDS, rng.choice(values))
        values.append(b.idx_read(lut, idx))
        values.append(b.logic(lambda x, y: (x + y) % MOD,
                              values[-1], rng.choice(values)))
    result = b.logic(lambda x: x % MOD, values[-1])
    if use_carry:
        b.update(carry, b.logic(lambda x, y: (x + y + 1) % MOD,
                                carry, result))
    b.write(out, result)
    return b.build(), in_s, lut, out


def verify_schedule(schedule):
    resources = ClusterResources()
    kernel = schedule.kernel
    edges = kernel.dependence_edges(
        schedule.inlane_separation, schedule.crosslane_separation
    )
    for edge in edges:
        gap = (schedule.slots[edge.sink.op_id]
               - schedule.slots[edge.source.op_id])
        assert gap >= edge.latency - schedule.ii * edge.distance
    usage = {}
    for op in kernel.ops:
        key = resource_key(op)
        if key is None:
            continue
        slot = schedule.slots[op.op_id]
        for k in range(op.spec.reserved_cycles):
            cell = (key, (slot + k) % schedule.ii)
            usage[cell] = usage.get(cell, 0) + 1
            assert usage[cell] <= resources.count(key)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    ops_count=st.integers(min_value=1, max_value=14),
    use_carry=st.booleans(),
    lookups=st.integers(min_value=0, max_value=3),
    separation=st.sampled_from([2, 4, 6, 8, 10]),
)
def test_random_kernels_schedule_legally(seed, ops_count, use_carry,
                                         lookups, separation):
    kernel, *_ = build_random_kernel(seed, ops_count, use_carry, lookups)
    schedule = ModuloScheduler().schedule(
        kernel, inlane_separation=separation
    )
    verify_schedule(schedule)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    ops_count=st.integers(min_value=1, max_value=10),
    use_carry=st.booleans(),
    lookups=st.integers(min_value=0, max_value=2),
)
def test_machine_matches_reference_interpreter(seed, ops_count, use_carry,
                                               lookups):
    kernel, in_s, lut, out = build_random_kernel(
        seed, ops_count, use_carry, lookups
    )
    rng = pyrandom.Random(seed + 1)
    iterations = 8  # a whole number of SRF access groups per lane
    table = [rng.randrange(MOD) for _ in range(TABLE_RECORDS)]
    inputs = [[rng.randrange(MOD) for _ in range(iterations)]
              for _ in range(LANES)]

    # Reference: the plain interpreter over list-backed streams.
    ctx = ListContext(LANES)
    ctx.bind_input(in_s, inputs)
    if lut is not None:
        ctx.bind_table(lut, [list(table)] * LANES)
    KernelInterpreter(kernel, LANES, ctx).run(iterations)
    expected = ctx.output("out")

    # Machine: the full cycle-accurate pipeline.
    proc = StreamProcessor(isrf4_config())
    n = iterations * LANES
    in_arr = SrfArray(proc.srf, n, "in")
    out_arr = SrfArray(proc.srf, n, "out")
    src = proc.memory.allocate(n, "src")
    dst = proc.memory.allocate(n, "dst")
    proc.memory.load_region(src, in_arr.stream_image_per_lane(inputs))
    bindings = {"in": in_arr.seq_read(), "out": out_arr.seq_write()}
    if lut is not None:
        lut_arr = SrfArray(proc.srf, TABLE_RECORDS * LANES, "lut")
        lut_arr.fill_replicated(table)
        bindings["lut"] = lut_arr.inlane_read(TABLE_RECORDS)
    prog = StreamProgram("rand")
    t_load = prog.add_memory(load_op(in_arr.seq_read(), src))
    t_k = prog.add_kernel(
        KernelInvocation(kernel, bindings, iterations=iterations),
        deps=[t_load],
    )
    prog.add_memory(store_op(out_arr.seq_write(name="st"), dst),
                    deps=[t_k])
    proc.run_program(prog)
    got = out_arr.per_lane_from_stream_image(
        proc.memory.dump_region(dst), iterations
    )
    assert got == expected
