"""Read-write indexed SRF streams — the paper's §7 future-work extension.

"We are exploring support for data structures that require both reads
and writes simultaneously in the SRF." The implementation rides on the
existing address-FIFO machinery: reads and writes of one read-write
stream share the FIFO, so read-after-write order equals program order.
The canonical use case is in-SRF histogramming (read bin, increment,
write back), which is impossible with read-xor-write streams in a
single kernel.
"""

import pytest

from repro.config import base_config, isrf4_config
from repro.core import SrfArray
from repro.core.descriptors import StreamKind
from repro.errors import KernelBuildError, SrfError
from repro.kernel import KernelBuilder, KernelInterpreter
from repro.kernel.contexts import ListContext
from repro.machine import KernelInvocation, StreamProcessor, StreamProgram
from repro.memory import load_op


def histogram_kernel():
    b = KernelBuilder("histogram")
    in_s = b.istream("in")
    bins = b.idxl_iostream("bins")
    value = b.read(in_s)
    count = b.idx_read(bins, value)
    b.idx_write(bins, value, b.logic(lambda c: c + 1, count))
    return b.build(), in_s, bins


class TestStreamKind:
    def test_readwrite_is_both(self):
        kind = StreamKind.INLANE_INDEXED_READWRITE
        assert kind.is_read and kind.is_write
        assert kind.is_indexed and not kind.is_crosslane
        assert kind.value == "idxl_iostream"

    def test_builder_accepts_rw_for_read_and_write(self):
        histogram_kernel()  # builds without error

    def test_plain_read_stream_still_rejects_writes(self):
        b = KernelBuilder("k")
        t = b.idxl_istream("t")
        with pytest.raises(KernelBuildError):
            b.idx_write(t, b.const(0), b.const(1))


class TestInterpreterSemantics:
    def test_histogram_with_list_context(self):
        kernel, in_s, bins = histogram_kernel()
        ctx = ListContext(lanes=2)
        ctx.bind_input(in_s, [[0, 1, 0, 0], [2, 2, 2, 1]])
        ctx.bind_table(bins, [[0, 0, 0, 0], [0, 0, 0, 0]])
        KernelInterpreter(kernel, 2, ctx).run(4)
        assert ctx.table("bins", lane=0) == [3, 1, 0, 0]
        assert ctx.table("bins", lane=1) == [0, 1, 3, 0]


class TestMachineSemantics:
    def run_histogram(self, data_per_lane, bins_count=8):
        proc = StreamProcessor(isrf4_config())
        lanes = proc.config.lanes
        kernel, in_s, bins = histogram_kernel()
        n = len(data_per_lane[0]) * lanes
        in_arr = SrfArray(proc.srf, n, "in")
        bins_arr = SrfArray(proc.srf, bins_count * lanes, "bins")
        bins_arr.fill_replicated([0] * bins_count)
        region = proc.memory.allocate(n, "src")
        proc.memory.load_region(
            region, in_arr.stream_image_per_lane(data_per_lane)
        )
        prog = StreamProgram("hist")
        t_load = prog.add_memory(load_op(in_arr.seq_read(), region))
        prog.add_kernel(KernelInvocation(kernel, {
            "in": in_arr.seq_read(),
            "bins": bins_arr.inlane_readwrite(bins_count),
        }, iterations=len(data_per_lane[0])), deps=[t_load])
        proc.run_program(prog)
        return proc, bins_arr

    def test_histogram_counts_are_exact(self):
        lanes = 8
        data = [[(lane + k) % 8 for k in range(16)] for lane in range(lanes)]
        proc, bins_arr = self.run_histogram(data)
        for lane in range(lanes):
            expected = [data[lane].count(v) for v in range(8)]
            assert bins_arr.read_per_lane(lane, 8) == expected

    def test_repeated_bin_read_after_write_hazard(self):
        # Every lane hammers bin 0: each read must see the previous
        # iteration's write (the RAW hazard the shared FIFO resolves).
        data = [[0] * 12 for _ in range(8)]
        proc, bins_arr = self.run_histogram(data)
        for lane in range(8):
            assert bins_arr.read_per_lane(lane, 1) == [12]

    def test_rw_stream_rejected_on_sequential_machine(self):
        proc = StreamProcessor(base_config())
        arr = SrfArray(proc.srf, 64, "bins")
        with pytest.raises(SrfError):
            proc.srf.open_indexed(arr.inlane_readwrite(8))

    def test_rw_descriptor_factory(self):
        proc = StreamProcessor(isrf4_config())
        arr = SrfArray(proc.srf, 64, "bins")
        desc = arr.inlane_readwrite(8)
        assert desc.kind is StreamKind.INLANE_INDEXED_READWRITE
        stream = proc.srf.open_indexed(desc)
        assert stream.robs is not None  # readable
        stream.issue_write(0, 0, [5])   # and writable
