"""Statistics classes: invariants of the Figure 12 accounting."""

from hypothesis import given, strategies as st

from repro.machine.stats import KernelRunStats, ProgramStats


class TestKernelRunStats:
    def test_zero_cycles_bandwidths_are_zero(self):
        run = KernelRunStats(kernel_name="k")
        assert run.sequential_bandwidth == 0.0
        assert run.inlane_bandwidth == 0.0
        assert run.crosslane_bandwidth == 0.0

    def test_imbalance_plus_loop_body_equals_trip_time(self):
        run = KernelRunStats(kernel_name="k", ii=5, iterations=10,
                             useful_iterations=7.5, total_cycles=100)
        assert run.loop_body_cycles + run.imbalance_cycles == 5 * 10
        assert run.loop_body_cycles == round(5 * 7.5)

    def test_overhead_never_negative(self):
        run = KernelRunStats(kernel_name="k", ii=10, iterations=10,
                             useful_iterations=10, total_cycles=50,
                             srf_stall_cycles=80)
        assert run.overhead_cycles == 0

    @given(
        ii=st.integers(min_value=1, max_value=64),
        iterations=st.integers(min_value=0, max_value=100),
        stalls=st.integers(min_value=0, max_value=500),
        extra=st.integers(min_value=0, max_value=500),
    )
    def test_breakdown_components_cover_total(self, ii, iterations, stalls,
                                              extra):
        total = ii * iterations + stalls + extra
        run = KernelRunStats(kernel_name="k", ii=ii, iterations=iterations,
                             useful_iterations=float(iterations),
                             total_cycles=total, srf_stall_cycles=stalls)
        assert (run.loop_body_cycles + run.srf_stall_cycles
                + run.overhead_cycles) == total


class TestProgramStats:
    def make(self, **kw):
        stats = ProgramStats(name="p", **kw)
        return stats

    def test_breakdown_keys(self):
        stats = self.make(total_cycles=10, memory_stall_cycles=4,
                          idle_cycles=1)
        breakdown = stats.breakdown()
        assert set(breakdown) == {
            "kernel_loop_body", "srf_stall", "memory_stall",
            "kernel_overheads", "idle",
        }

    def test_merge_accumulates(self):
        a = self.make(total_cycles=10, memory_stall_cycles=2,
                      offchip_words=100)
        run = KernelRunStats(kernel_name="k", ii=1, iterations=3,
                             useful_iterations=3.0, total_cycles=5)
        a.kernel_runs.append(run)
        b = self.make(total_cycles=20, memory_stall_cycles=8,
                      offchip_words=50)
        a.merge(b)
        assert a.total_cycles == 30
        assert a.memory_stall_cycles == 10
        assert a.offchip_words == 150
        assert len(a.kernel_runs) == 1

    def test_aggregate_kernel_categories(self):
        stats = self.make()
        for k in range(3):
            stats.kernel_runs.append(KernelRunStats(
                kernel_name=f"k{k}", ii=2, iterations=4,
                useful_iterations=4.0, total_cycles=20,
                srf_stall_cycles=3,
            ))
        assert stats.kernel_loop_body_cycles == 3 * 8
        assert stats.srf_stall_cycles == 9
        assert stats.kernel_overhead_cycles == 3 * (20 - 8 - 3)
