"""Golden-stats regression test: tier-1 timing pinned per preset.

``golden_stats.json`` snapshots the FFT 2D (n=16) ``ProgramStats`` for
all four Table 2 presets. Any change to cycle-level behaviour —
intentional or not — shows up as a diff against the fixture. It doubles
as the enforcement of the observability layer's zero-overhead contract:
running with tracing, metrics, and the profiler all enabled must
reproduce the fixture bit-for-bit.

Regenerate deliberately after an intentional timing change:

    PYTHONPATH=src:. python tests/machine/test_golden_stats.py
"""

import json
import os

import pytest

from repro.apps import fft
from repro.config.presets import all_configs

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_stats.json")

FFT_N = 16


def fingerprint(stats) -> dict:
    """The timing-relevant slice of ProgramStats, JSON-stable."""
    return {
        "total_cycles": stats.total_cycles,
        "memory_stall_cycles": stats.memory_stall_cycles,
        "idle_cycles": stats.idle_cycles,
        "offchip_words": stats.offchip_words,
        "kernel_runs": [
            {
                "kernel_name": run.kernel_name,
                "ii": run.ii,
                "depth": run.depth,
                "iterations": run.iterations,
                "useful_iterations": run.useful_iterations,
                "total_cycles": run.total_cycles,
                "srf_stall_cycles": run.srf_stall_cycles,
                "startup_cycles": run.startup_cycles,
                "sequential_words": run.sequential_words,
                "inlane_words": run.inlane_words,
                "crosslane_words": run.crosslane_words,
                "indexed_write_words": run.indexed_write_words,
                "lanes": run.lanes,
            }
            for run in stats.kernel_runs
        ],
    }


def capture(**overrides) -> dict:
    out = {}
    for name, config in all_configs().items():
        if overrides:
            config = config.replace(**overrides)
        result = fft.run(config, n=FFT_N).require_verified()
        out[name] = fingerprint(result.stats)
    return out


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.mark.parametrize("preset", ["Base", "ISRF1", "ISRF4", "Cache"])
class TestGoldenStats:
    def test_matches_fixture(self, golden, preset):
        config = all_configs()[preset]
        result = fft.run(config, n=FFT_N).require_verified()
        assert fingerprint(result.stats) == golden[preset]

    def test_observability_is_inert(self, golden, preset):
        """Trace + metrics + profiler on must not move a single cycle."""
        config = all_configs()[preset].replace(
            trace=True, metrics_level=2, profile_sample_period=64,
        )
        result = fft.run(config, n=FFT_N).require_verified()
        assert fingerprint(result.stats) == golden[preset]

    def test_sanitizer_is_inert(self, golden, preset):
        """Per-cycle invariant checks must not move a single cycle."""
        config = all_configs()[preset].replace(sanitize=True)
        result = fft.run(config, n=FFT_N).require_verified()
        assert fingerprint(result.stats) == golden[preset]

    def test_vector_backend_is_inert(self, golden, preset):
        """The vector execution backend is a pure simulation-speed knob:
        it must reproduce the *scalar-generated* fixture bit-for-bit,
        not merely be self-consistent."""
        config = all_configs()[preset].replace(backend="vector")
        result = fft.run(config, n=FFT_N).require_verified()
        assert fingerprint(result.stats) == golden[preset]

    def test_columnar_engine_is_inert(self, golden, preset):
        """The columnar timing engine is a pure simulation-speed knob:
        it must reproduce the *object-engine-generated* fixture
        bit-for-bit, not merely be self-consistent."""
        config = all_configs()[preset].replace(timing_engine="columnar")
        result = fft.run(config, n=FFT_N).require_verified()
        assert fingerprint(result.stats) == golden[preset]

    def test_columnar_engine_with_vector_backend_is_inert(self, golden,
                                                          preset):
        """Both speed knobs together still pin the fixture: drain
        windows charge exactly what per-cycle stepping would."""
        config = all_configs()[preset].replace(
            timing_engine="columnar", backend="vector"
        )
        result = fft.run(config, n=FFT_N).require_verified()
        assert fingerprint(result.stats) == golden[preset]

    def test_vector_backend_with_observability_is_inert(self, golden,
                                                        preset):
        """Steady-state fast-forward windows charge the profiler and
        metrics exactly like per-cycle ticking does."""
        config = all_configs()[preset].replace(
            backend="vector", trace=True, metrics_level=2,
            profile_sample_period=64,
        )
        result = fft.run(config, n=FFT_N).require_verified()
        assert fingerprint(result.stats) == golden[preset]


def test_fast_forward_off_matches_fixture(golden):
    """The cycle-loop fast path must be an exact shortcut (spot check)."""
    config = all_configs()["ISRF4"].replace(fast_forward=False)
    result = fft.run(config, n=FFT_N).require_verified()
    assert fingerprint(result.stats) == golden["ISRF4"]


if __name__ == "__main__":
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(capture(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"regenerated {GOLDEN_PATH}")
