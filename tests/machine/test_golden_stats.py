"""Golden-stats regression test: tier-1 timing pinned per app x preset.

``golden_stats.json`` snapshots the ``ProgramStats`` fingerprint of a
small workload per application family — FFT 2D (n=16) plus the sparse
suite (SpMV CSR/CSC and both stencils) — for all four Table 2 presets.
Any change to cycle-level behaviour — intentional or not — shows up as
a diff against the fixture. It doubles as the enforcement of the
observability layer's zero-overhead contract: running with tracing,
metrics, and the profiler all enabled must reproduce the fixture
bit-for-bit, as must every pure simulation-speed knob (vector backend,
columnar engine, fast-forward).

Regenerate deliberately after an intentional timing change:

    PYTHONPATH=src:. python tests/machine/test_golden_stats.py
"""

import json
import os

import pytest

from repro.apps import fft, spmv, stencil
from repro.config.presets import all_configs

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_stats.json")

FFT_N = 16

#: App name -> small pinned workload. Sizes are frozen with the fixture:
#: changing one is a fixture regeneration, never a silent drift.
APPS = {
    "FFT 2D": lambda cfg: fft.run(cfg, n=FFT_N),
    "SpMV_CSR": lambda cfg: spmv.run(cfg, fmt="csr", rows=64, cols=64,
                                     strips_to_run=2),
    "SpMV_CSC": lambda cfg: spmv.run(cfg, fmt="csc", rows=64, cols=64,
                                     strips_to_run=2),
    "Stencil_STAR": lambda cfg: stencil.run(cfg, pattern="star"),
    "Stencil_BOX": lambda cfg: stencil.run(cfg, pattern="box"),
}

PRESETS = ("Base", "ISRF1", "ISRF4", "Cache")


def fingerprint(stats) -> dict:
    """The timing-relevant slice of ProgramStats, JSON-stable."""
    return {
        "total_cycles": stats.total_cycles,
        "memory_stall_cycles": stats.memory_stall_cycles,
        "idle_cycles": stats.idle_cycles,
        "offchip_words": stats.offchip_words,
        "kernel_runs": [
            {
                "kernel_name": run.kernel_name,
                "ii": run.ii,
                "depth": run.depth,
                "iterations": run.iterations,
                "useful_iterations": run.useful_iterations,
                "total_cycles": run.total_cycles,
                "srf_stall_cycles": run.srf_stall_cycles,
                "startup_cycles": run.startup_cycles,
                "sequential_words": run.sequential_words,
                "inlane_words": run.inlane_words,
                "crosslane_words": run.crosslane_words,
                "indexed_write_words": run.indexed_write_words,
                "lanes": run.lanes,
            }
            for run in stats.kernel_runs
        ],
    }


def capture() -> dict:
    out = {}
    for app, runner in APPS.items():
        out[app] = {}
        for name, config in all_configs().items():
            result = runner(config).require_verified()
            out[app][name] = fingerprint(result.stats)
    return out


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.mark.parametrize("preset", PRESETS)
@pytest.mark.parametrize("app", sorted(APPS))
class TestGoldenStats:
    def test_matches_fixture(self, golden, app, preset):
        config = all_configs()[preset]
        result = APPS[app](config).require_verified()
        assert fingerprint(result.stats) == golden[app][preset]

    def test_observability_is_inert(self, golden, app, preset):
        """Trace + metrics + profiler on must not move a single cycle."""
        config = all_configs()[preset].replace(
            trace=True, metrics_level=2, profile_sample_period=64,
        )
        result = APPS[app](config).require_verified()
        assert fingerprint(result.stats) == golden[app][preset]

    def test_sanitizer_is_inert(self, golden, app, preset):
        """Per-cycle invariant checks must not move a single cycle."""
        config = all_configs()[preset].replace(sanitize=True)
        result = APPS[app](config).require_verified()
        assert fingerprint(result.stats) == golden[app][preset]

    def test_vector_backend_is_inert(self, golden, app, preset):
        """The vector execution backend is a pure simulation-speed knob:
        it must reproduce the *scalar-generated* fixture bit-for-bit,
        not merely be self-consistent."""
        config = all_configs()[preset].replace(backend="vector")
        result = APPS[app](config).require_verified()
        assert fingerprint(result.stats) == golden[app][preset]

    def test_columnar_engine_is_inert(self, golden, app, preset):
        """The columnar timing engine is a pure simulation-speed knob:
        it must reproduce the *object-engine-generated* fixture
        bit-for-bit, not merely be self-consistent."""
        config = all_configs()[preset].replace(timing_engine="columnar")
        result = APPS[app](config).require_verified()
        assert fingerprint(result.stats) == golden[app][preset]

    def test_columnar_engine_with_vector_backend_is_inert(self, golden,
                                                          app, preset):
        """Both speed knobs together still pin the fixture: drain
        windows charge exactly what per-cycle stepping would."""
        config = all_configs()[preset].replace(
            timing_engine="columnar", backend="vector"
        )
        result = APPS[app](config).require_verified()
        assert fingerprint(result.stats) == golden[app][preset]

    def test_vector_backend_with_observability_is_inert(self, golden,
                                                        app, preset):
        """Steady-state fast-forward windows charge the profiler and
        metrics exactly like per-cycle ticking does."""
        config = all_configs()[preset].replace(
            backend="vector", trace=True, metrics_level=2,
            profile_sample_period=64,
        )
        result = APPS[app](config).require_verified()
        assert fingerprint(result.stats) == golden[app][preset]


@pytest.mark.parametrize("app", sorted(APPS))
def test_fast_forward_off_matches_fixture(golden, app):
    """The cycle-loop fast path must be an exact shortcut, for every
    app family (the sparse kernels stress its steady-state windows with
    indexed-FIFO occupancy the FFT never reaches)."""
    config = all_configs()["ISRF4"].replace(fast_forward=False)
    result = APPS[app](config).require_verified()
    assert fingerprint(result.stats) == golden[app]["ISRF4"]


if __name__ == "__main__":
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(capture(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"regenerated {GOLDEN_PATH}")
