"""Executor and processor edge cases and failure paths."""

import pytest

import repro.machine.processor as processor_module
from repro.config import base_config, isrf4_config
from repro.core import SrfArray
from repro.errors import ExecutionError
from repro.kernel import KernelBuilder
from repro.machine import (
    KERNEL_STARTUP_CYCLES,
    KernelInvocation,
    StreamProcessor,
    StreamProgram,
)
from repro.memory import load_op


def copy_kernel():
    b = KernelBuilder("copy")
    in_s = b.istream("in")
    out_s = b.ostream("out")
    b.write(out_s, b.read(in_s))
    return b.build()


class TestBindingValidation:
    def test_non_descriptor_binding_rejected(self):
        proc = StreamProcessor(base_config())
        prog = StreamProgram("p")
        prog.add_kernel(KernelInvocation(
            copy_kernel(), {"in": "not-a-descriptor", "out": object()},
            iterations=1,
        ))
        with pytest.raises(ExecutionError, match="not a\n?.*StreamDescriptor"):
            proc.run_program(prog)

    def test_kind_mismatch_rejected(self):
        proc = StreamProcessor(base_config())
        arr = SrfArray(proc.srf, 64, "a")
        prog = StreamProgram("p")
        prog.add_kernel(KernelInvocation(
            copy_kernel(),
            # "in" expects a sequential READ; give it a write view.
            {"in": arr.seq_write(), "out": arr.seq_write()},
            iterations=1,
        ))
        with pytest.raises(ExecutionError, match="bound to a"):
            proc.run_program(prog)

    def test_indexed_kernel_on_sequential_machine_rejected(self):
        b = KernelBuilder("k")
        lut = b.idxl_istream("lut")
        out = b.ostream("o")
        b.write(out, b.idx_read(lut, b.const(0)))
        kernel = b.build()
        proc = StreamProcessor(base_config())
        arr = SrfArray(proc.srf, 64, "a")
        prog = StreamProgram("p")
        prog.add_kernel(KernelInvocation(kernel, {
            "lut": arr.inlane_read(8), "o": arr.seq_write(),
        }, iterations=1))
        with pytest.raises(Exception, match="sequential-only"):
            proc.run_program(prog)


class TestDeadlockDetection:
    def test_unsatisfiable_dependency_reports_deadlock(self, monkeypatch):
        monkeypatch.setattr(processor_module, "DEADLOCK_CYCLES", 500)
        proc = StreamProcessor(base_config())
        arr = SrfArray(proc.srf, 64, "a")
        region = proc.memory.allocate(64, "r")
        prog = StreamProgram("deadlocked")
        # A load depending on a task id that never exists in this run.
        prog.add_memory(load_op(arr.seq_read(), region), deps=[10**9])
        prog.tasks[0].deps = [10**9]
        with pytest.raises(ExecutionError, match="no progress"):
            prog.validate = lambda: None  # bypass static validation
            proc.run_program(prog)


class TestKernelLifecycle:
    def test_zero_iteration_kernel_completes(self):
        proc = StreamProcessor(base_config())
        arr = SrfArray(proc.srf, 64, "a")
        out = SrfArray(proc.srf, 64, "o")
        prog = StreamProgram("p")
        prog.add_kernel(KernelInvocation(copy_kernel(), {
            "in": arr.seq_read(), "out": out.seq_write(),
        }, iterations=0))
        stats = proc.run_program(prog)
        run = stats.kernel_runs[0]
        assert run.loop_body_cycles == 0
        assert run.total_cycles >= KERNEL_STARTUP_CYCLES

    def test_on_start_and_on_finish_hooks_fire_in_order(self):
        events = []
        proc = StreamProcessor(base_config())
        arr = SrfArray(proc.srf, 64, "a")
        out = SrfArray(proc.srf, 64, "o")
        arr.fill_stream_order([1] * 64)
        prog = StreamProgram("p")
        prog.add_kernel(KernelInvocation(
            copy_kernel(),
            {"in": arr.seq_read(), "out": out.seq_write()},
            iterations=8,
            on_start=lambda: events.append("start"),
            on_finish=lambda: events.append("finish"),
        ))
        proc.run_program(prog)
        assert events == ["start", "finish"]

    def test_srf_streams_released_after_kernel(self):
        proc = StreamProcessor(isrf4_config())
        b = KernelBuilder("k")
        lut = b.idxl_istream("lut")
        out_s = b.ostream("o")
        b.write(out_s, b.idx_read(lut, b.const(0)))
        kernel = b.build()
        table = SrfArray(proc.srf, 64, "t")
        out = SrfArray(proc.srf, 64, "o")
        prog = StreamProgram("p")
        prog.add_kernel(KernelInvocation(kernel, {
            "lut": table.inlane_read(8), "o": out.seq_write(),
        }, iterations=8))
        proc.run_program(prog)
        assert proc.srf.idle
        assert not proc.srf._indexed  # all indexed streams closed
        assert not proc.srf._seq_ports  # all ports closed

    def test_processor_reusable_across_programs(self):
        proc = StreamProcessor(base_config())
        arr = SrfArray(proc.srf, 64, "a")
        out = SrfArray(proc.srf, 64, "o")
        arr.fill_stream_order(list(range(64)))
        for _ in range(3):
            prog = StreamProgram("p")
            prog.add_kernel(KernelInvocation(copy_kernel(), {
                "in": arr.seq_read(), "out": out.seq_write(),
            }, iterations=8))
            stats = proc.run_program(prog)
            assert stats.total_cycles > 0
        assert out.read_stream_order(64) == list(range(64))

    def test_schedule_cache_reused(self):
        proc = StreamProcessor(base_config())
        kernel = copy_kernel()
        first = proc.schedule_kernel(kernel)
        second = proc.schedule_kernel(kernel)
        assert first is second
