"""End-to-end machine tests: functional correctness + timing attribution."""


from repro.config import base_config, isrf1_config, isrf4_config
from repro.core import SrfArray
from repro.kernel import KernelBuilder
from repro.machine import (
    KERNEL_STARTUP_CYCLES,
    KernelInvocation,
    StreamProcessor,
    StreamProgram,
)
from repro.memory import load_op, store_op

LANES = 8


def lookup_kernel(streams=1):
    """out = in + sum of LUT_k[in] over k lookups (distinct streams)."""
    b = KernelBuilder(f"lookup{streams}")
    in_s = b.istream("in")
    out_s = b.ostream("out")
    luts = [b.idxl_istream(f"LUT{i}") for i in range(streams)]
    a = b.read(in_s)
    acc = a
    for lut in luts:
        acc = b.add(acc, b.idx_read(lut, a))
    b.write(out_s, acc)
    return b.build(), in_s, luts, out_s


def copy_kernel():
    b = KernelBuilder("copy")
    in_s = b.istream("in")
    out_s = b.ostream("out")
    b.write(out_s, b.read(in_s))
    return b.build()


def run_lookup(config, n=64, streams=1, table_records=64):
    """Build the canonical load->lookup->store pipeline; returns
    (stats, result, expected, proc)."""
    proc = StreamProcessor(config)
    kernel, _in_s, _luts, _out = lookup_kernel(streams)
    in_arr = SrfArray(proc.srf, n, "in")
    out_arr = SrfArray(proc.srf, n, "out")
    lut_arrs = [
        SrfArray(proc.srf, table_records * LANES, f"lut{i}")
        for i in range(streams)
    ]
    table = [100 * (t + 1) for t in range(table_records)]
    in_region = proc.memory.allocate(n, "mem_in")
    out_region = proc.memory.allocate(n, "mem_out")
    inputs = [i % table_records for i in range(n)]
    proc.memory.load_region(in_region, inputs)
    for arr in lut_arrs:
        arr.fill_replicated(table)
    prog = StreamProgram("lookup")
    t_in = prog.add_memory(load_op(in_arr.seq_read(), in_region))
    bindings = {"in": in_arr.seq_read(), "out": out_arr.seq_write()}
    for i, arr in enumerate(lut_arrs):
        bindings[f"LUT{i}"] = arr.inlane_read(table_records)
    t_k = prog.add_kernel(
        KernelInvocation(kernel, bindings, iterations=n // LANES),
        deps=[t_in],
    )
    prog.add_memory(store_op(out_arr.seq_write(name="st"), out_region),
                    deps=[t_k])
    stats = proc.run_program(prog)
    result = proc.memory.dump_region(out_region)
    expected = [v + streams * table[v] for v in inputs]
    return stats, result, expected, proc


class TestFunctionalCorrectness:
    def test_indexed_lookup_pipeline_isrf4(self):
        stats, result, expected, _ = run_lookup(isrf4_config())
        assert result == expected

    def test_indexed_lookup_pipeline_isrf1(self):
        stats, result, expected, _ = run_lookup(isrf1_config())
        assert result == expected

    def test_multi_stream_lookup(self):
        stats, result, expected, _ = run_lookup(isrf4_config(), streams=2)
        assert result == expected

    def test_sequential_copy_on_base_machine(self):
        proc = StreamProcessor(base_config())
        n = 128
        in_arr = SrfArray(proc.srf, n, "in")
        out_arr = SrfArray(proc.srf, n, "out")
        src = proc.memory.allocate(n, "src")
        dst = proc.memory.allocate(n, "dst")
        data = [3 * i + 1 for i in range(n)]
        proc.memory.load_region(src, data)
        prog = StreamProgram("copy")
        t_in = prog.add_memory(load_op(in_arr.seq_read(), src))
        t_k = prog.add_kernel(
            KernelInvocation(
                copy_kernel(),
                {"in": in_arr.seq_read(), "out": out_arr.seq_write()},
                iterations=n // LANES,
            ),
            deps=[t_in],
        )
        prog.add_memory(store_op(out_arr.seq_write(name="st"), dst),
                        deps=[t_k])
        proc.run_program(prog)
        assert proc.memory.dump_region(dst) == data


class TestTimingAttribution:
    def test_breakdown_categories_cover_total(self):
        stats, *_ = run_lookup(isrf4_config())
        b = stats.breakdown()
        assert sum(b.values()) == stats.total_cycles

    def test_kernel_startup_in_overhead(self):
        stats, *_ = run_lookup(isrf4_config())
        run = stats.kernel_runs[0]
        assert run.overhead_cycles >= KERNEL_STARTUP_CYCLES

    def test_memory_stall_present_for_dependent_load(self):
        stats, *_ = run_lookup(isrf4_config())
        assert stats.memory_stall_cycles > 0

    def test_offchip_traffic_counts_load_and_store(self):
        stats, *_ = run_lookup(isrf4_config(), n=64)
        assert stats.offchip_words == 128  # 64 in + 64 out

    def test_loop_body_is_ii_times_iterations(self):
        stats, *_ = run_lookup(isrf4_config(), n=64)
        run = stats.kernel_runs[0]
        assert run.loop_body_cycles == run.ii * 8

    def test_load_imbalance_attributed_to_overhead(self):
        proc = StreamProcessor(isrf4_config())
        n = 64
        in_arr = SrfArray(proc.srf, n, "in")
        out_arr = SrfArray(proc.srf, n, "out")
        in_arr.fill_stream_order([1] * n)
        prog = StreamProgram("imbalanced")
        prog.add_kernel(KernelInvocation(
            copy_kernel(),
            {"in": in_arr.seq_read(), "out": out_arr.seq_write()},
            iterations=8,
            useful_iterations=[8, 8, 8, 8, 4, 4, 4, 4],
        ))
        stats = proc.run_program(prog)
        run = stats.kernel_runs[0]
        assert run.imbalance_cycles == run.ii * 2  # mean useful = 6 of 8
        assert run.loop_body_cycles == run.ii * 6


class TestIndexedBandwidthEffects:
    def test_isrf1_stalls_more_than_isrf4_with_multiple_streams(self):
        # The paper: ISRF1 and ISRF4 differ only for benchmarks with more
        # than one indexed stream (Rijndael, Filter), where ISRF1's single
        # indexed word/cycle/lane causes SRF stalls.
        s1, r1, e1, _ = run_lookup(isrf1_config(), n=256, streams=3)
        s4, r4, e4, _ = run_lookup(isrf4_config(), n=256, streams=3)
        assert r1 == e1 and r4 == e4
        stall1 = s1.kernel_runs[0].srf_stall_cycles
        stall4 = s4.kernel_runs[0].srf_stall_cycles
        assert s1.kernel_runs[0].total_cycles >= s4.kernel_runs[0].total_cycles
        assert stall1 >= stall4

    def test_srf_bandwidth_stats_populated(self):
        stats, *_ = run_lookup(isrf4_config(), n=256)
        run = stats.kernel_runs[0]
        assert run.inlane_words == 256
        assert run.inlane_bandwidth > 0
        assert run.sequential_bandwidth > 0
        assert run.crosslane_words == 0


class TestOverlap:
    def test_double_buffering_hides_memory_time(self):
        """Two independent datasets: loads overlap the previous kernel."""
        def build(proc, tag, kernel, regions):
            n = 512
            in_arr = SrfArray(proc.srf, n, f"in{tag}")
            out_arr = SrfArray(proc.srf, n, f"out{tag}")
            src = proc.memory.allocate(n, f"src{tag}")
            proc.memory.load_region(src, [1] * n)
            prog = StreamProgram(f"p{tag}")
            t_in = prog.add_memory(load_op(in_arr.seq_read(), src))
            prog.add_kernel(KernelInvocation(
                kernel,
                {"in": in_arr.seq_read(), "out": out_arr.seq_write()},
                iterations=n // LANES,
            ), deps=[t_in])
            return prog

        kernel = copy_kernel()
        serial = StreamProcessor(base_config())
        p1 = build(serial, "a", kernel, None)
        p2 = build(serial, "b", kernel, None)
        serial_stats = [serial.run_program(p1.then(p2, join_all=True))]
        serial_total = serial_stats[0].total_cycles

        overlapped = StreamProcessor(base_config())
        q1 = build(overlapped, "a", kernel, None)
        q2 = build(overlapped, "b", kernel, None)
        overlap_total = overlapped.run_program(q1.then(q2)).total_cycles
        assert overlap_total < serial_total
