"""Differential testing: reference interpreter vs cycle-accurate machine.

Every benchmark application already carries an independent reference
implementation; its ``verified`` flag is the differential check. Here we
force that comparison for *every app on every Table 2 preset* — not just
the config under study — and extend the random-kernel differential
harness of :mod:`tests.machine.test_random_kernels` across all four
presets, so a timing bug that corrupts data on exactly one machine
configuration cannot hide.
"""

import random as pyrandom

import pytest

from repro.config.presets import all_configs
from repro.core import SrfArray
from repro.kernel import KernelInterpreter
from repro.kernel.contexts import ListContext
from repro.machine import KernelInvocation, StreamProcessor, StreamProgram
from repro.memory import load_op, store_op

from tests.machine.test_random_kernels import (
    LANES,
    MOD,
    TABLE_RECORDS,
    build_random_kernel,
)

CONFIGS = all_configs()
PRESETS = list(CONFIGS)


@pytest.fixture(params=PRESETS)
def config(request):
    return CONFIGS[request.param]


class TestAppsVerifyOnEveryPreset:
    """Each app's machine output must equal its reference on all presets.

    Workload sizes are the smallest that exercise multiple strips /
    software-pipeline stages; ``require_verified`` raises on the first
    divergence.
    """

    def test_fft(self, config):
        from repro.apps import fft
        fft.run(config, n=16).require_verified()

    def test_rijndael(self, config):
        from repro.apps import rijndael
        rijndael.run(config, blocks_per_lane=2).require_verified()

    def test_sort(self, config):
        from repro.apps import sort
        sort.run(config, n=256).require_verified()

    def test_filter2d(self, config):
        from repro.apps import filter2d
        filter2d.run(config, height=16, width=32).require_verified()

    @pytest.mark.parametrize("dataset", ["IG_SML", "IG_DCS"])
    def test_igraph(self, config, dataset):
        from repro.apps import igraph
        igraph.run(config, dataset=dataset, nodes=128,
                   strips_to_run=2).require_verified()

    @pytest.mark.parametrize("fmt", ["csr", "csc"])
    def test_spmv(self, config, fmt):
        from repro.apps import spmv
        spmv.run(config, fmt=fmt, rows=64, cols=64,
                 strips_to_run=2).require_verified()

    @pytest.mark.parametrize("pattern", ["star", "box"])
    def test_stencil(self, config, pattern):
        from repro.apps import stencil
        stencil.run(config, pattern=pattern).require_verified()


def run_differential(config, seed, ops_count, use_carry, lookups):
    """One random kernel through the interpreter and the machine."""
    kernel, in_s, lut, out = build_random_kernel(
        seed, ops_count, use_carry, lookups
    )
    rng = pyrandom.Random(seed + 1)
    iterations = 8
    table = [rng.randrange(MOD) for _ in range(TABLE_RECORDS)]
    inputs = [[rng.randrange(MOD) for _ in range(iterations)]
              for _ in range(LANES)]

    ctx = ListContext(LANES)
    ctx.bind_input(in_s, inputs)
    if lut is not None:
        ctx.bind_table(lut, [list(table)] * LANES)
    KernelInterpreter(kernel, LANES, ctx).run(iterations)
    expected = ctx.output("out")

    proc = StreamProcessor(config)
    n = iterations * LANES
    in_arr = SrfArray(proc.srf, n, "in")
    out_arr = SrfArray(proc.srf, n, "out")
    src = proc.memory.allocate(n, "src")
    dst = proc.memory.allocate(n, "dst")
    proc.memory.load_region(src, in_arr.stream_image_per_lane(inputs))
    bindings = {"in": in_arr.seq_read(), "out": out_arr.seq_write()}
    if lut is not None:
        lut_arr = SrfArray(proc.srf, TABLE_RECORDS * LANES, "lut")
        lut_arr.fill_replicated(table)
        bindings["lut"] = lut_arr.inlane_read(TABLE_RECORDS)
    prog = StreamProgram("rand")
    t_load = prog.add_memory(load_op(in_arr.seq_read(), src))
    t_k = prog.add_kernel(
        KernelInvocation(kernel, bindings, iterations=iterations),
        deps=[t_load],
    )
    prog.add_memory(store_op(out_arr.seq_write(name="st"), dst),
                    deps=[t_k])
    proc.run_program(prog)
    got = out_arr.per_lane_from_stream_image(
        proc.memory.dump_region(dst), iterations
    )
    assert got == expected


class TestRandomKernelsOnEveryPreset:
    """Seeded random kernels differentially tested per preset.

    Indexed lookups only run on the machines whose SRF supports them;
    sequential-only presets exercise the same kernels without the table.
    """

    @pytest.mark.parametrize("seed", [3, 17, 42, 1001])
    @pytest.mark.parametrize("use_carry", [False, True])
    def test_sequential_kernels(self, config, seed, use_carry):
        run_differential(config, seed, ops_count=8, use_carry=use_carry,
                         lookups=0)

    @pytest.mark.parametrize("seed", [5, 23, 77])
    def test_indexed_kernels(self, config, seed):
        if not config.supports_indexing:
            pytest.skip("sequential-only SRF has no indexed streams")
        run_differential(config, seed, ops_count=6, use_carry=True,
                         lookups=2)
