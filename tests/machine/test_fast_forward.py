"""Fast-forward equivalence: skipping pure-wait cycles in bulk must be
invisible in every statistic the paper's figures are built from."""

import re

import pytest

from repro.apps import fft, sort
from repro.config import base_config
from repro.config.presets import all_configs
from repro.core import SrfArray
from repro.errors import DeadlockError, ExecutionError
from repro.machine import StreamProcessor, StreamProgram
from repro.memory import load_op

CONFIG_NAMES = ("Base", "ISRF1", "ISRF4", "Cache")


def _run_both(app_run, config, **kwargs):
    fast = app_run(config.replace(fast_forward=True), **kwargs)
    slow = app_run(config.replace(fast_forward=False), **kwargs)
    assert fast.verified and slow.verified
    return fast, slow


class TestBitIdenticalStats:
    @pytest.mark.parametrize("config_name", CONFIG_NAMES)
    def test_fft_stats_identical(self, config_name):
        config = all_configs()[config_name]
        fast, slow = _run_both(fft.run, config, n=16, repeats=1)
        assert fast.stats == slow.stats

    @pytest.mark.parametrize("config_name", CONFIG_NAMES)
    def test_sort_stats_identical(self, config_name):
        config = all_configs()[config_name]
        fast, slow = _run_both(sort.run, config, n=256, repeats=1)
        assert fast.stats == slow.stats

    def test_stall_breakdown_identical(self):
        # The categories fast-forward charges in bulk — not just totals.
        config = all_configs()["ISRF4"]
        fast, slow = _run_both(fft.run, config, n=16, repeats=1)
        assert fast.stats.total_cycles == slow.stats.total_cycles
        assert fast.stats.memory_stall_cycles == slow.stats.memory_stall_cycles
        assert fast.stats.idle_cycles == slow.stats.idle_cycles
        assert fast.stats.offchip_words == slow.stats.offchip_words
        assert fast.stats.kernel_runs == slow.stats.kernel_runs


class TestDeadlockNotMasked:
    def _stuck_program(self, proc):
        arr = SrfArray(proc.srf, 64, "a")
        region = proc.memory.allocate(64, "r")
        prog = StreamProgram("stuck")
        # A load depending on a task id that never exists in this run.
        prog.add_memory(load_op(arr.seq_read(), region), deps=[10**9])
        prog.tasks[0].deps = [10**9]
        prog.validate = lambda: None  # bypass static validation
        return prog

    @pytest.mark.parametrize("fast_forward", [True, False])
    def test_configured_limit_aborts(self, fast_forward):
        config = base_config().replace(
            deadlock_cycles=500, fast_forward=fast_forward
        )
        proc = StreamProcessor(config)
        with pytest.raises(ExecutionError, match="no progress for 500"):
            proc.run_program(self._stuck_program(proc))

    def test_abort_cycle_identical_across_modes(self):
        # Fast-forward must not skip past the deadlock horizon: a stuck
        # program aborts on exactly the same cycle either way.
        abort_cycles = []
        for fast_forward in (True, False):
            config = base_config().replace(
                deadlock_cycles=400, fast_forward=fast_forward
            )
            proc = StreamProcessor(config)
            with pytest.raises(ExecutionError, match="no progress for 400"):
                proc.run_program(self._stuck_program(proc))
            abort_cycles.append(proc.cycle)
        assert abort_cycles[0] == abort_cycles[1]

    def test_deadlock_cycles_validated(self):
        with pytest.raises(Exception, match="deadlock_cycles"):
            base_config().replace(deadlock_cycles=0)

    @pytest.mark.parametrize("fast_forward", [True, False])
    def test_abort_raises_deadlock_error_with_report(self, fast_forward):
        config = base_config().replace(
            deadlock_cycles=500, fast_forward=fast_forward
        )
        proc = StreamProcessor(config)
        with pytest.raises(DeadlockError) as excinfo:
            proc.run_program(self._stuck_program(proc))
        error = excinfo.value
        assert isinstance(error, ExecutionError)  # old handlers still work
        assert error.report is not None
        assert error.report.program == "stuck"
        assert error.report.cycle == proc.cycle

    def _multi_stuck_program(self, proc):
        prog = StreamProgram("stuck")
        # Three blocked loads with deliberately unsorted dep lists; the
        # forensics must come out sorted regardless of insertion order.
        for name, deps in (("c", [7 * 10**8, 3 * 10**8]),
                           ("a", [9 * 10**8]),
                           ("b", [5 * 10**8, 1 * 10**8])):
            arr = SrfArray(proc.srf, 64, name)
            region = proc.memory.allocate(64, f"r_{name}")
            prog.add_memory(load_op(arr.seq_read(), region), deps=deps)
        for task, deps in zip(
            prog.tasks,
            ([7 * 10**8, 3 * 10**8], [9 * 10**8], [5 * 10**8, 1 * 10**8]),
        ):
            task.deps = deps
        prog.validate = lambda: None  # bypass static validation
        return prog

    def test_forensics_listings_are_deterministic(self):
        config = base_config().replace(deadlock_cycles=400)
        texts = []
        for _ in range(2):
            proc = StreamProcessor(config)
            with pytest.raises(DeadlockError) as excinfo:
                proc.run_program(self._multi_stuck_program(proc))
            report = excinfo.value.report
            # Blocked tasks ordered by task id, deps numerically sorted.
            ids = [task.task_id for task in report.blocked]
            assert ids == sorted(ids)
            for task in report.blocked:
                assert task.missing_deps == sorted(task.missing_deps)
            assert report.srf_occupancy == sorted(report.srf_occupancy)
            assert report.inflight_memory == sorted(report.inflight_memory)
            # Task ids are globally unique across program builds; strip
            # them so the rendered forensics can be compared run to run.
            texts.append(re.sub(r"task \d+", "task N", report.describe()))
        assert texts[0] == texts[1]

    def test_report_names_the_blocked_task_and_its_deps(self):
        config = base_config().replace(deadlock_cycles=500)
        proc = StreamProcessor(config)
        with pytest.raises(DeadlockError) as excinfo:
            proc.run_program(self._stuck_program(proc))
        report = excinfo.value.report
        blocked = report.blocked
        assert len(blocked) == 1
        assert blocked[0].name == "load:a"
        assert blocked[0].kind == "memory"
        assert 10**9 in blocked[0].missing_deps
        text = report.describe()
        assert "deadlock forensics" in text
        assert "waiting on: 1000000000" in text
        # The dump reaches the exception message seen by the user.
        assert "waiting on" in str(excinfo.value)
