"""Object/columnar timing-engine equivalence on every app and preset.

The columnar engine (:mod:`repro.machine.columnar`) is a pure
simulation-speed knob: for every benchmark application and every Table 2
machine configuration it must produce bit-identical ``ProgramStats`` AND
bit-identical application outputs, in direct execution and in
trace-replay timing mode. These tests enforce that on real workloads —
and enforce that the columnar engine actually *engages*, so a silent
fallback to the object engine can never fake an equivalence pass.

``tests/fuzz/test_timing_engine.py`` covers randomly generated programs.
"""

import dataclasses

import pytest

from repro.apps import common as apps_common
from repro.apps import fft
from repro.config.machine import MachineConfig
from repro.config.presets import (
    TIMING_ENGINE_ENV,
    all_configs,
    base_config,
)
from repro.errors import ConfigurationError
from repro.machine import replay
from repro.machine.columnar import (
    ColumnarProcessor,
    build_processor,
    columnar_eligible,
    engine_for,
)
from repro.machine.replay import TraceStore
from tests.machine.test_backend_equivalence import PRESETS, RUNNERS


def full_stats(stats) -> dict:
    """Every ProgramStats field, recursively — nothing exempted."""
    return dataclasses.asdict(stats)


@pytest.fixture
def engine_log(monkeypatch):
    """Record the engine of every processor a run builds.

    Patches the single seam all apps share
    (:func:`repro.apps.common.make_processor` delegates to
    ``build_processor``), so the log reflects what actually simulated.
    """
    engines = []

    def recording(config):
        processor = build_processor(config)
        engines.append(processor.engine)
        return processor

    monkeypatch.setattr(apps_common, "build_processor", recording)
    return engines


@pytest.mark.parametrize("preset", PRESETS)
@pytest.mark.parametrize("app", sorted(RUNNERS))
def test_engines_bit_identical(app, preset, engine_log):
    """Same full ProgramStats and same outputs on both engines."""
    config = all_configs()[preset]
    obj = RUNNERS[app](config).require_verified()
    assert engine_log == ["object"]
    del engine_log[:]
    col = RUNNERS[app](
        config.replace(timing_engine="columnar")
    ).require_verified()
    # Engagement: a fallback would record "object" and could trivially
    # "pass" the equivalence assertion below.
    assert engine_log == ["columnar"]
    assert full_stats(obj.stats) == full_stats(col.stats)
    assert obj.details == col.details


@pytest.mark.parametrize("preset", PRESETS)
@pytest.mark.parametrize("app", sorted(RUNNERS))
def test_engines_bit_identical_in_replay(app, preset, tmp_path,
                                         engine_log):
    """Record once, then replay under both engines: identical stats.

    Replay mode drives the executor from recorded kernel data instead
    of the interpreter, exercising the drain-window machinery on a
    different step path than direct execution.
    """
    store = TraceStore(str(tmp_path))
    config = all_configs()[preset].replace(timing_source="replay")
    with replay.session(store, app, config, "test") as sess:
        recorded = RUNNERS[app](config).require_verified()
        assert sess.mode == "record"
    del engine_log[:]
    with replay.session(store, app, config, "test") as sess:
        obj = RUNNERS[app](config).require_verified()
        assert sess.mode == "replay"
    columnar_cfg = config.replace(timing_engine="columnar")
    with replay.session(store, app, columnar_cfg, "test") as sess:
        col = RUNNERS[app](columnar_cfg).require_verified()
        assert sess.mode == "replay"
    assert engine_log == ["object", "columnar"]
    assert full_stats(obj.stats) == full_stats(col.stats)
    assert full_stats(recorded.stats) == full_stats(col.stats)


class TestSelection:
    """Engine selection: config field, env overlay, harness seam."""

    def test_default_engine_is_object(self):
        assert MachineConfig().timing_engine == "object"
        assert base_config().timing_engine == "object"
        assert build_processor(base_config()).engine == "object"

    def test_columnar_selected_when_eligible(self):
        for name, config in all_configs().items():
            columnar = config.replace(timing_engine="columnar")
            assert engine_for(columnar) == "columnar", name
            assert build_processor(columnar).engine == "columnar", name

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(timing_engine="quantum").validate()

    def test_env_overlay(self, monkeypatch):
        monkeypatch.setenv(TIMING_ENGINE_ENV, "columnar")
        assert base_config().timing_engine == "columnar"
        # Explicit overrides still win over the environment.
        assert base_config(
            timing_engine="object"
        ).timing_engine == "object"
        monkeypatch.setenv(TIMING_ENGINE_ENV, "warp9")
        with pytest.raises(ConfigurationError):
            base_config()

    def test_blank_env_is_ignored(self, monkeypatch):
        monkeypatch.setenv(TIMING_ENGINE_ENV, "")
        assert base_config().timing_engine == "object"


#: Config features the columnar engine must refuse: each hooks the
#: per-cycle object path in a way batch-stepped windows cannot model.
INELIGIBLE = {
    "faults": dict(fault_seed=7, fault_srf_flips=2, fault_horizon=2_000),
    "sanitize": dict(sanitize=True),
    "trace": dict(trace=True),
    "metrics": dict(metrics_level=1),
    "profile": dict(profile_sample_period=64),
    "per_cycle": dict(fast_forward=False),
}


class TestFallback:
    """The documented fallback matrix, enforced edge by edge."""

    @pytest.mark.parametrize("feature", sorted(INELIGIBLE))
    def test_ineligible_configs_fall_back(self, feature):
        config = all_configs()["ISRF4"].replace(
            timing_engine="columnar", **INELIGIBLE[feature]
        )
        eligible, reason = columnar_eligible(config)
        assert not eligible and reason
        assert engine_for(config) == "object"
        assert build_processor(config).engine == "object"

    @pytest.mark.parametrize("feature", sorted(INELIGIBLE))
    def test_direct_construction_refused(self, feature):
        """A fallback can never masquerade as a columnar run: building
        ColumnarProcessor for an ineligible config raises instead of
        running half-modelled."""
        config = all_configs()["ISRF4"].replace(
            timing_engine="columnar", **INELIGIBLE[feature]
        )
        with pytest.raises(ConfigurationError):
            ColumnarProcessor(config)

    def test_faulted_columnar_run_matches_object(self, engine_log):
        """A faulted run under timing_engine="columnar" falls back and
        still reproduces the object engine's faulted stats exactly."""
        faulted = all_configs()["ISRF4"].replace(**INELIGIBLE["faults"])
        obj = fft.run(faulted, n=16, repeats=1)
        col = fft.run(
            faulted.replace(timing_engine="columnar"), n=16, repeats=1
        )
        assert engine_log == ["object", "object"]
        assert obj.stats.faults.injected > 0
        assert full_stats(obj.stats) == full_stats(col.stats)

    def test_eligibility_reasons_are_distinct(self):
        reasons = set()
        for overrides in INELIGIBLE.values():
            config = all_configs()["ISRF4"].replace(**overrides)
            eligible, reason = columnar_eligible(config)
            assert not eligible
            reasons.add(reason)
        assert len(reasons) == len(INELIGIBLE)
