"""Scalar/vector backend equivalence across every app and preset.

The vector backend (:mod:`repro.machine.vector`) is a pure simulation
speed knob: for every benchmark application and every Table 2 machine
configuration it must produce bit-identical ``ProgramStats`` AND
bit-identical application outputs. These tests enforce that on real
workloads; ``tests/fuzz`` covers randomly generated programs.
"""

import os

import pytest

from repro.apps import fft, filter2d, igraph, rijndael, sort, spmv, stencil
from repro.config.machine import MachineConfig
from repro.config.presets import BACKEND_ENV, all_configs, base_config
from repro.errors import ConfigurationError
from repro.machine import executor as executor_mod
from repro.machine.vector import VectorKernelInterpreter
from tests.machine.test_golden_stats import fingerprint

PRESETS = ("Base", "ISRF1", "ISRF4", "Cache")

#: Small-but-real workloads: every kernel family (FFT butterflies,
#: Rijndael carry chains, sort merge networks, filter rows, all four
#: Table 4 index-distribution datasets, sparse gather/scatter and
#: banded stencils) at CI-friendly sizes.
RUNNERS = {
    "fft": lambda cfg: fft.run(cfg, n=16),
    "rijndael": lambda cfg: rijndael.run(cfg, blocks_per_lane=2),
    "sort": lambda cfg: sort.run(cfg, n=256),
    "filter": lambda cfg: filter2d.run(cfg, height=16, width=32),
    "ig_sml": lambda cfg: igraph.run(cfg, dataset="IG_SML", nodes=128,
                                     strips_to_run=2),
    "ig_dms": lambda cfg: igraph.run(cfg, dataset="IG_DMS", nodes=128,
                                     strips_to_run=2),
    "ig_dcs": lambda cfg: igraph.run(cfg, dataset="IG_DCS", nodes=128,
                                     strips_to_run=2),
    "ig_scl": lambda cfg: igraph.run(cfg, dataset="IG_SCL", nodes=128,
                                     strips_to_run=2),
    "spmv_csr": lambda cfg: spmv.run(cfg, fmt="csr", rows=64, cols=64,
                                     strips_to_run=2),
    "spmv_csc": lambda cfg: spmv.run(cfg, fmt="csc", rows=64, cols=64,
                                     strips_to_run=2),
    "stencil_star": lambda cfg: stencil.run(cfg, pattern="star"),
    "stencil_box": lambda cfg: stencil.run(cfg, pattern="box"),
}


@pytest.mark.parametrize("preset", PRESETS)
@pytest.mark.parametrize("app", sorted(RUNNERS))
def test_backends_bit_identical(app, preset):
    """Same stats fingerprint and same outputs on both backends."""
    config = all_configs()[preset]
    scalar = RUNNERS[app](config).require_verified()
    vector = RUNNERS[app](
        config.replace(backend="vector")
    ).require_verified()
    assert fingerprint(scalar.stats) == fingerprint(vector.stats)
    assert scalar.details == vector.details


def test_vector_engine_actually_used(monkeypatch):
    """The equivalence above must not pass vacuously: a vector-backend
    run of a supported kernel must construct the vector engine."""
    built = []
    real = VectorKernelInterpreter

    def counting(*args, **kwargs):
        engine = real(*args, **kwargs)
        built.append(engine)
        return engine

    monkeypatch.setattr(
        executor_mod, "VectorKernelInterpreter", counting
    )
    fft.run(all_configs()["ISRF4"].replace(backend="vector"), n=16)
    assert built, "vector backend never engaged the vector engine"


def test_scalar_backend_never_builds_vector_engine(monkeypatch):
    def forbidden(*args, **kwargs):
        raise AssertionError("scalar backend built the vector engine")

    monkeypatch.setattr(
        executor_mod, "VectorKernelInterpreter", forbidden
    )
    fft.run(all_configs()["ISRF4"], n=16).require_verified()


def test_default_backend_is_scalar():
    assert MachineConfig().backend == "scalar"
    assert base_config().backend == "scalar"


def test_backend_env_overlay(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "vector")
    assert base_config().backend == "vector"
    # Explicit overrides still win over the environment.
    assert base_config(backend="scalar").backend == "scalar"
    monkeypatch.setenv(BACKEND_ENV, "warp9")
    with pytest.raises(ConfigurationError):
        base_config()


def test_unknown_backend_rejected():
    with pytest.raises(ConfigurationError):
        MachineConfig(backend="simd").validate()
    assert os.environ.get(BACKEND_ENV) in (None, "")  # test hygiene


class TestSeedStability:
    """The backend knob must not perturb any seeded machinery.

    Fault schedules are drawn from ``fault_seed`` and profiler samples
    from cycle numbers; switching backends must leave both bit-stable,
    or reliability results would silently depend on a pure
    simulation-speed setting.
    """

    FLIPS = dict(fault_seed=13, fault_srf_flips=12, fault_dram_flips=12,
                 fault_horizon=2_000)

    def test_fault_plan_identical_across_backends(self):
        from repro.faults import FaultPlan

        scalar_cfg = all_configs()["ISRF4"].replace(**self.FLIPS)
        vector_cfg = scalar_cfg.replace(backend="vector")
        scalar_plan = FaultPlan.from_config(scalar_cfg)
        vector_plan = FaultPlan.from_config(vector_cfg)
        for domain in ("srf_flips", "dram_flips", "crossbar_drops",
                       "memory_delays"):
            assert (getattr(scalar_plan, domain)
                    == getattr(vector_plan, domain))

    def test_faulted_runs_identical_and_fall_back(self, monkeypatch):
        """Faulted vector runs must fall back to the scalar engine (the
        functional overlay cannot see mid-block strikes) and therefore
        match the scalar backend trivially — but bit-exactly."""

        def forbidden(*args, **kwargs):
            raise AssertionError("faulted run built the vector engine")

        monkeypatch.setattr(
            executor_mod, "VectorKernelInterpreter", forbidden
        )
        scalar_cfg = all_configs()["ISRF4"].replace(**self.FLIPS)
        scalar = fft.run(scalar_cfg, n=16, repeats=1)
        vector = fft.run(scalar_cfg.replace(backend="vector"), n=16,
                         repeats=1)
        assert scalar.stats.faults.injected > 0
        assert scalar.stats == vector.stats

    def test_profiler_report_identical_across_backends(self):
        from repro import observe

        config = all_configs()["ISRF4"].replace(profile_sample_period=64)
        with observe.collect() as scalar_run:
            fft.run(config, n=16, repeats=1)
        with observe.collect() as vector_run:
            fft.run(config.replace(backend="vector"), n=16, repeats=1)
        scalar_reports = [o.profiler.report()
                         for o in scalar_run.observers]
        vector_reports = [o.profiler.report()
                         for o in vector_run.observers]
        assert scalar_reports == vector_reports
