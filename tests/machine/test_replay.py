"""Trace-replay timing mode: bit-identical stats, honest invalidation.

The contract of :mod:`repro.machine.replay` is exact: a run re-timed
from a recorded trace must produce :class:`ProgramStats` bit-identical
to a functionally executed run, for every app on every Table 2 preset —
the replay analogue of the scalar/vector backend equivalence suite.
The store tests pin the invalidation rules: timing-only config fields
share traces, functional fields split them, and stale or corrupt
bundles are quarantined rather than replayed.
"""

import gzip
import pickle

import pytest

from repro.config.presets import all_configs, base_config, isrf4_config
from repro.errors import ConfigurationError, ReplayError
from repro.machine import replay
from repro.machine.replay import (
    TRACE_FORMAT_VERSION,
    InvocationTrace,
    TraceBundle,
    TraceStore,
    functional_fingerprint,
)
from tests.machine.test_backend_equivalence import RUNNERS
from tests.machine.test_golden_stats import fingerprint

PRESETS = ("Base", "ISRF1", "ISRF4", "Cache")


@pytest.mark.parametrize("preset", PRESETS)
@pytest.mark.parametrize("app", sorted(RUNNERS))
def test_replay_bit_identical(app, preset, tmp_path):
    """Record once, replay once: same stats fingerprint, same outputs.

    The recording run is itself a fully executed run (recording is
    passive), so comparing it against the replaying run compares
    executed stats against replayed stats.
    """
    store = TraceStore(str(tmp_path))
    config = all_configs()[preset].replace(timing_source="replay")
    with replay.session(store, app, config, "test") as sess:
        recorded = RUNNERS[app](config).require_verified()
        first_mode = sess.mode
    with replay.session(store, app, config, "test") as sess:
        replayed = RUNNERS[app](config).require_verified()
        assert sess.mode == "replay"
    assert first_mode == "record"
    assert fingerprint(recorded.stats) == fingerprint(replayed.stats)


def test_trace_shared_across_timing_variants(tmp_path):
    """One recording re-times every timing-only sweep point exactly.

    ISRF1 and ISRF4 differ only in indexed bandwidths (timing-only), so
    a trace recorded under ISRF1 must replay under ISRF4 — and under a
    separation-sweep variant — with stats bit-identical to fresh
    execution of each.
    """
    store = TraceStore(str(tmp_path))
    configs = all_configs()
    recorder = configs["ISRF1"].replace(timing_source="replay")
    with replay.session(store, "fft", recorder, "test") as sess:
        RUNNERS["fft"](recorder).require_verified()
        assert sess.mode == "record"
    for variant in (
        configs["ISRF4"],
        configs["ISRF1"].replace(inlane_addr_data_separation=10),
    ):
        target = variant.replace(timing_source="replay")
        with replay.session(store, "fft", target, "test") as sess:
            replayed = RUNNERS["fft"](target).require_verified()
            assert sess.mode == "replay"
        executed = RUNNERS["fft"](variant).require_verified()
        assert fingerprint(replayed.stats) == fingerprint(executed.stats)


def test_replay_config_without_session_executes_normally():
    """timing_source="replay" is inert outside a session (no store)."""
    config = isrf4_config(timing_source="replay")
    result = RUNNERS["fft"](config).require_verified()
    executed = RUNNERS["fft"](isrf4_config()).require_verified()
    assert fingerprint(result.stats) == fingerprint(executed.stats)


def test_faulted_runs_never_record_or_replay(tmp_path):
    """Bit flips change functional data: faulted configs execute fresh."""
    store = TraceStore(str(tmp_path))
    config = isrf4_config(
        timing_source="replay", fault_seed=7, fault_srf_flips=2,
    )
    with replay.session(store, "fft", config, "test") as sess:
        RUNNERS["fft"](config)
        # The processor never consulted the session: nothing recorded.
        assert sess.bundle.programs == []


class TestConfigValidation:
    def test_timing_source_validated(self):
        with pytest.raises(ConfigurationError, match="timing_source"):
            base_config(timing_source="psychic")

    def test_replay_env_overlay(self, monkeypatch):
        from repro.config.presets import REPLAY_ENV

        monkeypatch.setenv(REPLAY_ENV, "1")
        assert base_config().timing_source == "replay"
        monkeypatch.setenv(REPLAY_ENV, "execute")
        assert base_config().timing_source == "execute"
        monkeypatch.setenv(REPLAY_ENV, "maybe")
        with pytest.raises(ConfigurationError, match="REPRO_REPLAY"):
            base_config()


class TestFunctionalFingerprint:
    def test_timing_only_fields_share_a_key(self, tmp_path):
        store = TraceStore(str(tmp_path))
        reference = isrf4_config()
        for variant in (
            isrf4_config(clock_hz=2e9),
            isrf4_config(inlane_addr_data_separation=12),
            isrf4_config(backend="vector"),
            isrf4_config(dram_latency_cycles=200),
            all_configs()["ISRF1"],
        ):
            assert store.key("b", variant, "s") == \
                store.key("b", reference, "s")

    def test_functional_fields_split_keys(self, tmp_path):
        store = TraceStore(str(tmp_path))
        reference = base_config()
        for variant in (
            base_config(lanes=4),
            base_config(has_cache=True),
            base_config(fault_seed=1, fault_srf_flips=1),
            isrf4_config(),
        ):
            assert store.key("b", variant, "s") != \
                store.key("b", reference, "s")

    def test_benchmark_and_scale_split_keys(self, tmp_path):
        store = TraceStore(str(tmp_path))
        config = base_config()
        assert store.key("a", config, "s") != store.key("b", config, "s")
        assert store.key("a", config, "s") != store.key("a", config, "t")

    def test_blacklist_must_name_real_fields(self, monkeypatch):
        monkeypatch.setattr(
            replay, "TIMING_ONLY_FIELDS", frozenset({"name", "warp_core"})
        )
        with pytest.raises(ReplayError, match="warp_core"):
            functional_fingerprint(base_config())


class TestTraceStore:
    def test_missing_bundle_is_none(self, tmp_path):
        store = TraceStore(str(tmp_path))
        assert store.load("b", base_config(), "s") is None

    def test_corrupt_bundle_quarantined(self, tmp_path):
        store = TraceStore(str(tmp_path))
        config = base_config()
        key = store.key("b", config, "s")
        path = store._path(key)
        (tmp_path / f"{key}.trace.gz").write_bytes(b"not gzip at all")
        assert store.load("b", config, "s") is None
        assert not (tmp_path / f"{key}.trace.gz").exists()
        assert (tmp_path / f"{key}.trace.gz.bad").exists()
        # Re-recording over a quarantined entry works.
        store.save(key, TraceBundle(TRACE_FORMAT_VERSION, "b", "s"))
        assert store.load("b", config, "s") is not None
        assert path.endswith(".trace.gz")

    def test_wrong_version_quarantined(self, tmp_path):
        store = TraceStore(str(tmp_path))
        config = base_config()
        key = store.key("b", config, "s")
        stale = TraceBundle(TRACE_FORMAT_VERSION + 1, "b", "s")
        with gzip.open(store._path(key), "wb") as handle:
            pickle.dump(stale, handle)
        assert store.load("b", config, "s") is None
        assert (tmp_path / f"{key}.trace.gz.bad").exists()

    def test_unverified_run_saves_nothing(self, tmp_path):
        store = TraceStore(str(tmp_path))
        config = base_config(timing_source="replay")
        with pytest.raises(RuntimeError, match="boom"):
            with replay.session(store, "b", config, "s"):
                raise RuntimeError("boom")
        assert store.load("b", config, "s") is None
        assert replay.active_session() is None

    def test_sessions_do_not_nest(self, tmp_path):
        store = TraceStore(str(tmp_path))
        config = base_config(timing_source="replay")
        with replay.session(store, "b", config, "s"):
            with pytest.raises(ReplayError, match="nest"):
                with replay.session(store, "b", config, "s"):
                    pass


class TestMismatchDetection:
    def test_program_shape_mismatch_raises(self, tmp_path):
        store = TraceStore(str(tmp_path))
        config = base_config(timing_source="replay")
        key = store.key("b", config, "s")
        store.save(key, TraceBundle(TRACE_FORMAT_VERSION, "b", "s"))
        with pytest.raises(ReplayError, match="recorded programs"):
            with replay.session(store, "b", config, "s"):
                RUNNERS["fft"](config)

    def test_invocation_mismatch_raises(self):
        inv = _FakeInvocation("k", 8, [])
        trace = InvocationTrace("k", iterations=4, op_kinds=())
        program_trace = replay.ProgramTrace("p", 1, {0: trace})
        with pytest.raises(ReplayError, match="does not match"):
            replay.invocation_replay(program_trace, 0, inv)

    def test_missing_invocation_raises(self):
        inv = _FakeInvocation("k", 8, [])
        program_trace = replay.ProgramTrace("p", 1, {})
        with pytest.raises(ReplayError, match="no recorded trace"):
            replay.invocation_replay(program_trace, 0, inv)


class _FakeKernel:
    def __init__(self, ops):
        self._ops = ops

    def stream_ops(self, *kinds):
        wanted = set(kinds)
        return [op for op in self._ops if op.kind in wanted]


class _FakeInvocation:
    def __init__(self, name, iterations, ops):
        self.name = name
        self.iterations = iterations
        self.kernel = _FakeKernel(ops)
