"""Stream-program construction and validation."""

import pytest

from repro.errors import ExecutionError
from repro.kernel import KernelBuilder
from repro.machine import KernelInvocation, StreamProgram


def tiny_kernel():
    b = KernelBuilder("tiny")
    in_s = b.istream("i")
    out = b.ostream("o")
    b.write(out, b.read(in_s))
    return b.build(), in_s, out


class TestKernelInvocation:
    def test_all_streams_must_be_bound(self):
        k, in_s, out = tiny_kernel()
        with pytest.raises(ExecutionError):
            KernelInvocation(k, {"i": object()}, iterations=1)

    def test_negative_iterations_rejected(self):
        k, in_s, out = tiny_kernel()
        with pytest.raises(ExecutionError):
            KernelInvocation(k, {"i": 1, "o": 2}, iterations=-1)

    def test_useful_iterations_capped_by_trip_count(self):
        k, *_ = tiny_kernel()
        with pytest.raises(ExecutionError):
            KernelInvocation(k, {"i": 1, "o": 2}, iterations=4,
                             useful_iterations=[5] * 8)

    def test_mean_useful_iterations(self):
        k, *_ = tiny_kernel()
        inv = KernelInvocation(k, {"i": 1, "o": 2}, iterations=4,
                               useful_iterations=[4, 4, 2, 2])
        assert inv.mean_useful_iterations == 3.0
        balanced = KernelInvocation(k, {"i": 1, "o": 2}, iterations=4)
        assert balanced.mean_useful_iterations == 4.0


class TestStreamProgram:
    def test_unknown_dependencies_caught_at_validate(self):
        # Cross-program deps are legal at add time (buffer guards for
        # chained strips); a standalone program with a dangling dep is
        # rejected by validate().
        prog = StreamProgram()
        prog.add_kernel(
            KernelInvocation(tiny_kernel()[0], {"i": 1, "o": 2}, 1),
            deps=[999],
        )
        with pytest.raises(ExecutionError):
            prog.validate()

    def test_validate_catches_forward_deps(self):
        prog = StreamProgram()
        k, *_ = tiny_kernel()
        t = prog.add_kernel(KernelInvocation(k, {"i": 1, "o": 2}, 1))
        prog.tasks[0].deps.append(12345)  # corrupt
        with pytest.raises(ExecutionError):
            prog.validate()

    def test_then_concatenates_without_barrier(self):
        k, *_ = tiny_kernel()
        a = StreamProgram("a")
        ta = a.add_kernel(KernelInvocation(k, {"i": 1, "o": 2}, 1))
        b = StreamProgram("b")
        tb = b.add_kernel(KernelInvocation(k, {"i": 1, "o": 2}, 1))
        combined = a.then(b)
        combined.validate()
        by_id = {t.task_id: t for t in combined.tasks}
        assert by_id[tb].deps == []

    def test_then_with_barrier(self):
        k, *_ = tiny_kernel()
        a = StreamProgram("a")
        ta = a.add_kernel(KernelInvocation(k, {"i": 1, "o": 2}, 1))
        b = StreamProgram("b")
        tb = b.add_kernel(KernelInvocation(k, {"i": 1, "o": 2}, 1))
        combined = a.then(b, join_all=True)
        by_id = {t.task_id: t for t in combined.tasks}
        assert ta in by_id[tb].deps
