"""Sparse suite differentials: scipy/NumPy ground truth, all machines.

Two layers compose into a machine-vs-scipy proof:

1. **Reference vs scipy** — the in-module functional references
   (:func:`repro.apps.spmv.reference_matvec_csr`/``_csc``,
   :func:`repro.apps.stencil.reference_stencil`) are compared against
   scipy. SpMV accumulates in exactly scipy's ``csr_matvec`` /
   ``csc_matvec`` float-operation order, so equality is EXACT (``==``,
   no tolerance); the stencil reference is checked against
   ``scipy.ndimage.correlate`` (different accumulation order, so
   tightly-toleranced).
2. **Machine vs reference** — every preset x backend x timing engine
   runs the full cycle-accurate simulation and ``require_verified()``
   enforces the app's own word-for-word comparison against the same
   references.

Together: the simulated machine agrees with scipy on every preset,
backend, and engine. The scipy layer skips cleanly where scipy is not
installed; the machine layer never needs it.
"""

import pytest

from repro.apps import spmv, stencil
from repro.apps.spmv import (
    ORDERINGS, dense_vector, random_matrix,
    reference_matvec_csr, reference_matvec_csc,
)
from repro.apps.stencil import PATTERNS, RADIUS, reference_stencil
from repro.config.presets import all_configs

import numpy as np

PRESETS = ("Base", "ISRF1", "ISRF4", "Cache")
BACKENDS = ("scalar", "vector")
ENGINES = ("object", "columnar")


# ----------------------------------------------------------------------
# Layer 1: in-module references vs scipy
# ----------------------------------------------------------------------
@pytest.mark.parametrize("ordering", ORDERINGS)
def test_reference_csr_matches_scipy_exactly(ordering):
    sparse = pytest.importorskip("scipy.sparse")
    matrix = random_matrix(96, 96, avg_nnz=6, ordering=ordering)
    x = np.array(dense_vector(96))
    a = sparse.csr_matrix(
        (matrix.data, matrix.indices, matrix.indptr),
        shape=(matrix.rows, matrix.cols),
    )
    expected = a @ x  # csr_matvec: per-row accumulation in entry order
    got = reference_matvec_csr(matrix, list(x))
    assert got == list(expected)  # exact: same float-op order


@pytest.mark.parametrize("ordering", ORDERINGS)
def test_reference_csc_matches_scipy_exactly(ordering):
    sparse = pytest.importorskip("scipy.sparse")
    matrix = random_matrix(96, 96, avg_nnz=6, ordering=ordering)
    x = np.array(dense_vector(96))
    a = sparse.csr_matrix(
        (matrix.data, matrix.indices, matrix.indptr),
        shape=(matrix.rows, matrix.cols),
    ).tocsc()
    expected = a @ x  # csc_matvec: column-major accumulation
    got = reference_matvec_csc(matrix, list(x))
    assert got == list(expected)  # exact: same float-op order


def test_csr_and_csc_references_agree_within_rounding():
    """The two references take different float paths (row-major vs
    column-major accumulation) yet compute the same matvec."""
    matrix = random_matrix(96, 96, avg_nnz=6, ordering="random")
    x = dense_vector(96)
    csr = reference_matvec_csr(matrix, x)
    csc = reference_matvec_csc(matrix, x)
    assert np.allclose(csr, csc, rtol=1e-12)


@pytest.mark.parametrize("pattern", sorted(PATTERNS))
def test_reference_stencil_matches_scipy(pattern):
    ndimage = pytest.importorskip("scipy.ndimage")
    rng = np.random.default_rng(41)
    image = rng.uniform(0.5, 1.5, size=(16, 32))
    size = 2 * RADIUS + 1
    weights = np.zeros((size, size))
    for (dr, dc), coeff in PATTERNS[pattern]:
        weights[dr, dc] = coeff
    # The reference computes valid rows only (no row padding) with
    # edge-padded columns; slice scipy's fully padded result to match.
    expected = ndimage.correlate(image, weights, mode="nearest")
    expected = expected[RADIUS:image.shape[0] - RADIUS, :]
    got = reference_stencil(image, pattern)
    assert np.allclose(got, expected, rtol=1e-12, atol=0)


def test_dense_differential():
    """Pure-NumPy ground truth (no scipy needed): the references equal
    the dense matvec within rounding on every ordering."""
    for ordering in ORDERINGS:
        matrix = random_matrix(64, 64, avg_nnz=5, ordering=ordering)
        x = np.array(dense_vector(64))
        dense = matrix.to_dense() @ x
        assert np.allclose(reference_matvec_csr(matrix, list(x)), dense)
        assert np.allclose(reference_matvec_csc(matrix, list(x)), dense)


# ----------------------------------------------------------------------
# Layer 2: cycle-accurate machine vs the references, everywhere
# ----------------------------------------------------------------------
def _config(preset, backend, engine):
    return all_configs()[preset].replace(
        backend=backend, timing_engine=engine
    )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("preset", PRESETS)
@pytest.mark.parametrize("fmt", spmv.FORMATS)
def test_spmv_verifies_on_every_machine(fmt, preset, backend, engine):
    """require_verified() is the word-for-word reference comparison;
    CSC on indexed presets additionally walks the vector backend's
    scalar-fallback path (read-write indexed streams)."""
    result = spmv.run(_config(preset, backend, engine), fmt=fmt,
                      rows=64, cols=64, strips_to_run=2)
    result.require_verified()


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("preset", PRESETS)
@pytest.mark.parametrize("pattern", sorted(PATTERNS))
def test_stencil_verifies_on_every_machine(pattern, preset, backend,
                                           engine):
    result = stencil.run(_config(preset, backend, engine),
                         pattern=pattern)
    result.require_verified()


@pytest.mark.parametrize("ordering", ORDERINGS)
def test_spmv_verifies_under_every_ordering(ordering):
    """The locality sweep's orderings all verify on the indexed SRF."""
    result = spmv.run(all_configs()["ISRF4"], fmt="csr", rows=64,
                      cols=64, ordering=ordering, strips_to_run=2)
    result.require_verified()


# ----------------------------------------------------------------------
# Replay-mode bit-identity (the per-preset sweep lives in
# tests/machine/test_replay.py via the shared RUNNERS table; this pins
# the scalar-fallback CSC program specifically).
# ----------------------------------------------------------------------
def test_spmv_csc_replay_bit_identical(tmp_path):
    from repro.machine import replay
    from repro.machine.replay import TraceStore
    from tests.machine.test_golden_stats import fingerprint

    store = TraceStore(str(tmp_path))
    config = all_configs()["ISRF4"].replace(timing_source="replay")

    def run(cfg):
        return spmv.run(cfg, fmt="csc", rows=64, cols=64,
                        strips_to_run=2).require_verified()

    with replay.session(store, "spmv_csc", config, "test") as sess:
        recorded = run(config)
        assert sess.mode == "record"
    with replay.session(store, "spmv_csc", config, "test") as sess:
        replayed = run(config)
        assert sess.mode == "replay"
    assert fingerprint(recorded.stats) == fingerprint(replayed.stats)
