"""Unit-level tests of the application building blocks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.fft import bit_reverse, dif_butterflies
from repro.apps.filter2d import COEFFS, reference_filter
from repro.apps.igraph import (
    CHAIN_CONSTANTS,
    IrregularGraph,
    chain_value,
)
from repro.apps.sort import merge_runs
from repro.errors import ExecutionError


class TestDifButterflies:
    def test_stage0_pairs_span_half(self):
        pairs = dif_butterflies(8, 0)
        assert [(i, j) for i, j, _w in pairs] == [
            (0, 4), (1, 5), (2, 6), (3, 7)
        ]

    def test_last_stage_pairs_adjacent(self):
        # The property the FFT app relies on: the final stage leaves the
        # array in row-major slot order.
        n = 16
        pairs = dif_butterflies(n, 3)
        assert [(i, j) for i, j, _w in pairs] == [
            (2 * t, 2 * t + 1) for t in range(n // 2)
        ]

    @given(st.sampled_from([8, 16, 32, 64]))
    def test_full_dif_equals_numpy_fft(self, n):
        rng = np.random.default_rng(n)
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        v = x.copy()
        stages = n.bit_length() - 1
        for s in range(stages):
            for i, j, w in dif_butterflies(n, s):
                a, b = v[i], v[j]
                v[i] = a + b
                v[j] = (a - b) * w
        unscrambled = np.array(
            [v[bit_reverse(k, stages)] for k in range(n)]
        )
        assert np.allclose(unscrambled, np.fft.fft(x))

    def test_out_of_range_stage(self):
        with pytest.raises(ExecutionError):
            dif_butterflies(8, 3)


class TestBitReverse:
    def test_known_values(self):
        assert bit_reverse(0b001, 3) == 0b100
        assert bit_reverse(0b110, 3) == 0b011
        assert bit_reverse(0, 6) == 0

    @given(st.integers(min_value=1, max_value=10), st.data())
    def test_involution(self, bits, data):
        value = data.draw(st.integers(min_value=0, max_value=2**bits - 1))
        assert bit_reverse(bit_reverse(value, bits), bits) == value


class TestMergeRuns:
    def test_single_pass(self):
        assert merge_runs([3, 1, 4, 2], 1) == [1, 3, 2, 4]
        assert merge_runs([1, 3, 2, 4], 2) == [1, 2, 3, 4]

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=999),
                    min_size=1, max_size=64))
    def test_repeated_passes_fully_sort(self, values):
        length = 1 << max(1, (len(values) - 1)).bit_length()
        values = (values + [10**6] * length)[:length]
        run = 1
        while run < length:
            values = merge_runs(values, run)
            run *= 2
        assert values == sorted(values)

    @given(st.lists(st.integers(), min_size=2, max_size=64),
           st.sampled_from([1, 2, 4, 8]))
    def test_pass_preserves_multiset(self, values, run):
        assert sorted(merge_runs(values, run)) == sorted(values)


class TestFilterReference:
    def test_coefficients_normalised(self):
        assert COEFFS.sum() == pytest.approx(1.0)
        assert COEFFS.shape == (5, 5)

    def test_constant_image_maps_to_itself(self):
        image = np.full((12, 16), 3.5)
        out = reference_filter(image)
        assert out.shape == (8, 16)
        assert np.allclose(out, 3.5)

    def test_impulse_response_is_kernel(self):
        image = np.zeros((9, 16))
        image[4, 8] = 1.0
        out = reference_filter(image)
        assert np.allclose(out[0:5, 6:11], COEFFS[::-1, ::-1])


class TestIrregularGraphUnits:
    def test_chain_value_deterministic_and_finite(self):
        for flops in (16, 51):
            a = chain_value(1.2345, flops)
            b = chain_value(1.2345, flops)
            assert a == b
            assert np.isfinite(a)

    def test_chain_constants_near_one(self):
        # The chain must not explode over 51 ops.
        for c in CHAIN_CONSTANTS:
            assert 0.99 < c < 1.01
        assert abs(chain_value(1.0, 51)) < 100

    def test_every_node_has_a_neighbor(self):
        g = IrregularGraph(300, avg_degree=4, seed=3)
        assert all(len(adj) >= 1 for adj in g.neighbors)

    def test_neighbors_in_range(self):
        g = IrregularGraph(200, avg_degree=16, seed=4)
        for adj in g.neighbors:
            assert all(0 <= u < 200 for u in adj)

    def test_locality_window_respected_roughly(self):
        g = IrregularGraph(2000, avg_degree=4, seed=5, locality_window=50)
        for v in range(0, 2000, 97):
            for u in g.neighbors[v]:
                assert abs(u - v) <= 50

    def test_reference_updates_shape(self):
        g = IrregularGraph(50, avg_degree=4, seed=6)
        updates = g.reference_updates(16)
        assert len(updates) == 50
        assert all(np.isfinite(u) for u in updates)
