"""Figure 17/18 microbenchmarks: throughput shapes."""

import pytest

from repro.apps.microbench import (
    crosslane_random_read_throughput,
    inlane_random_read_throughput,
)
from repro.errors import ExecutionError

CYCLES = 800


class TestInlaneThroughput:
    def test_single_subarray_saturates_at_one_word(self):
        r = inlane_random_read_throughput(subarrays=1, fifo_entries=8,
                                          cycles=CYCLES)
        assert r.words_per_cycle_per_lane == pytest.approx(1.0, abs=0.05)

    def test_throughput_grows_with_subarrays(self):
        results = [
            inlane_random_read_throughput(subarrays=s, fifo_entries=8,
                                          cycles=CYCLES)
            .words_per_cycle_per_lane
            for s in (1, 2, 4, 8)
        ]
        assert results[0] < results[1] < results[2] < results[3]

    def test_utilization_declines_with_subarrays(self):
        # Head-of-line blocking: more sub-arrays -> lower utilisation of
        # the available bandwidth (paper §5.4).
        results = {
            s: inlane_random_read_throughput(subarrays=s, fifo_entries=8,
                                             cycles=CYCLES)
            .words_per_cycle_per_lane
            for s in (2, 8)
        }
        assert results[2] / 2 > results[8] / 8

    def test_throughput_grows_with_fifo_size(self):
        small = inlane_random_read_throughput(subarrays=4, fifo_entries=1,
                                              cycles=CYCLES)
        large = inlane_random_read_throughput(subarrays=4, fifo_entries=8,
                                              cycles=CYCLES)
        assert (large.words_per_cycle_per_lane
                > 1.3 * small.words_per_cycle_per_lane)

    def test_invalid_parameters(self):
        with pytest.raises(ExecutionError):
            inlane_random_read_throughput(streams=0)


class TestCrosslaneThroughput:
    def test_two_ports_beat_one_significantly(self):
        one = crosslane_random_read_throughput(ports_per_bank=1,
                                               cycles=CYCLES)
        two = crosslane_random_read_throughput(ports_per_bank=2,
                                               cycles=CYCLES)
        assert (two.words_per_cycle_per_lane
                > 1.15 * one.words_per_cycle_per_lane)

    def test_four_ports_only_marginally_better_than_two(self):
        two = crosslane_random_read_throughput(ports_per_bank=2,
                                               cycles=CYCLES)
        four = crosslane_random_read_throughput(ports_per_bank=4,
                                                cycles=CYCLES)
        assert (four.words_per_cycle_per_lane
                < 1.10 * two.words_per_cycle_per_lane)

    def test_comm_traffic_degrades_mildly(self):
        quiet = crosslane_random_read_throughput(comm_occupancy=0.0,
                                                 cycles=CYCLES)
        busy = crosslane_random_read_throughput(comm_occupancy=0.8,
                                                cycles=CYCLES)
        ratio = (busy.words_per_cycle_per_lane
                 / quiet.words_per_cycle_per_lane)
        assert 0.6 < ratio < 1.0  # paper: 20% or less over a wide range

    def test_occupancy_bounds_checked(self):
        with pytest.raises(ExecutionError):
            crosslane_random_read_throughput(comm_occupancy=1.5)
