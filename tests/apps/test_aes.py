"""AES-128 core: FIPS-197 and SP800-38A conformance."""

import pytest

from repro.apps import aes
from repro.errors import ExecutionError


class TestSbox:
    def test_known_entries(self):
        # FIPS-197 Figure 7 spot checks.
        assert aes.SBOX[0x00] == 0x63
        assert aes.SBOX[0x01] == 0x7C
        assert aes.SBOX[0x53] == 0xED
        assert aes.SBOX[0xAB] == 0x62
        assert aes.SBOX[0xFF] == 0x16

    def test_sbox_is_a_permutation(self):
        assert sorted(aes.SBOX) == list(range(256))


class TestTTables:
    def test_te0_entry_structure(self):
        # Te0[x] packs (2*s, s, s, 3*s) for s = SBOX[x].
        for x in (0, 1, 0x7F, 0xFF):
            s = aes.SBOX[x]
            word = aes.TE0[x]
            assert (word >> 16) & 0xFF == s
            assert (word >> 8) & 0xFF == s

    def test_tables_are_rotations_of_te0(self):
        def ror8(w):
            return ((w >> 8) | (w << 24)) & 0xFFFFFFFF

        for x in range(0, 256, 17):
            assert aes.TE1[x] == ror8(aes.TE0[x])
            assert aes.TE2[x] == ror8(aes.TE1[x])
            assert aes.TE3[x] == ror8(aes.TE2[x])


class TestKeyExpansion:
    def test_fips197_appendix_a1(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        words = aes.expand_key(key)
        assert len(words) == 44
        assert words[4] == 0xA0FAFE17
        assert words[43] == 0xB6630CA6

    def test_wrong_key_length_rejected(self):
        with pytest.raises(ExecutionError):
            aes.expand_key(b"short")


class TestBlockEncryption:
    def test_fips197_appendix_b(self):
        ct = aes.encrypt_block(
            bytes.fromhex("3243f6a8885a308d313198a2e0370734"),
            bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"),
        )
        assert ct.hex() == "3925841d02dc09fbdc118597196a0b32"

    def test_fips197_appendix_c1(self):
        ct = aes.encrypt_block(
            bytes.fromhex("00112233445566778899aabbccddeeff"),
            bytes.fromhex("000102030405060708090a0b0c0d0e0f"),
        )
        assert ct.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_wrong_block_length_rejected(self):
        with pytest.raises(ExecutionError):
            aes.encrypt_block(b"short", bytes(16))


class TestCbc:
    KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    IV = bytes.fromhex("000102030405060708090a0b0c0d0e0f")

    def test_sp800_38a_f21_all_four_blocks(self):
        pt = bytes.fromhex(
            "6bc1bee22e409f96e93d7e117393172a"
            "ae2d8a571e03ac9c9eb76fac45af8e51"
            "30c81c46a35ce411e5fbc1191a0a52ef"
            "f69f2445df4f9b17ad2b417be66c3710"
        )
        expected = (
            "7649abac8119b246cee98e9b12e9197d"
            "5086cb9b507219ee95db113a917678b2"
            "73bed6b8e3c1743b7116e69e22229516"
            "3ff1caa1681fac09120eca307586e1a7"
        )
        assert aes.cbc_encrypt(pt, self.KEY, self.IV).hex() == expected

    def test_chaining_differs_from_ecb(self):
        pt = bytes(32)
        ct = aes.cbc_encrypt(pt, self.KEY, self.IV)
        assert ct[:16] != ct[16:]

    def test_partial_block_rejected(self):
        with pytest.raises(ExecutionError):
            aes.cbc_encrypt(b"x" * 17, self.KEY, self.IV)

    def test_bad_iv_rejected(self):
        with pytest.raises(ExecutionError):
            aes.cbc_encrypt(bytes(16), self.KEY, b"short")


class TestLookupTrace:
    def test_trace_has_160_lookups(self):
        rk = aes.expand_key(bytes(16))
        trace = aes.lookup_trace_block((0, 0, 0, 0), rk)
        assert len(trace) == aes.LOOKUPS_PER_BLOCK == 160

    def test_trace_tables_and_ranges(self):
        rk = aes.expand_key(bytes(range(16)))
        trace = aes.lookup_trace_block((1, 2, 3, 4), rk)
        main = trace[:144]
        final = trace[144:]
        assert all(t in (0, 1, 2, 3) for t, _ in main)
        assert all(t == 4 for t, _ in final)
        assert all(0 <= idx < 256 for _, idx in trace)

    def test_trace_reproduces_encryption_lookups(self):
        # Feeding the traced table values through the XOR structure must
        # reproduce the ciphertext; sanity: trace is deterministic.
        rk = aes.expand_key(bytes(16))
        a = aes.lookup_trace_block((5, 6, 7, 8), rk)
        b = aes.lookup_trace_block((5, 6, 7, 8), rk)
        assert a == b
