"""End-to-end benchmark tests: functional verification plus the paper's
qualitative relations between machine configurations.

Workloads are scaled down relative to the paper so the suite stays
fast; the relations under test (who wins, what the traffic ratios look
like) are size-independent.
"""

import pytest

from repro.config import (
    all_configs,
    base_config,
)
from repro.apps import fft, filter2d, igraph, rijndael, sort


@pytest.fixture(scope="module")
def rijndael_results():
    return {
        name: rijndael.run(cfg, blocks_per_lane=4, repeats=2, warmup=1)
        for name, cfg in all_configs().items()
    }


class TestRijndael:
    def test_all_configs_verified(self, rijndael_results):
        for name, result in rijndael_results.items():
            assert result.verified, f"{name} produced wrong ciphertext"

    def test_isrf_traffic_reduction_about_95_percent(self, rijndael_results):
        base = rijndael_results["Base"].offchip_words
        isrf = rijndael_results["ISRF4"].offchip_words
        assert isrf / base < 0.10  # paper: up to 95% reduction

    def test_isrf4_fastest(self, rijndael_results):
        cycles = {k: r.cycles for k, r in rijndael_results.items()}
        assert cycles["ISRF4"] < cycles["ISRF1"]
        assert cycles["ISRF4"] < cycles["Cache"]
        assert cycles["ISRF4"] < cycles["Base"]

    def test_speedup_magnitude(self, rijndael_results):
        speedup = (rijndael_results["Base"].cycles
                   / rijndael_results["ISRF4"].cycles)
        assert 2.0 < speedup < 6.5  # paper: 4.11x

    def test_isrf1_suffers_srf_stalls(self, rijndael_results):
        # Rijndael has five indexed streams: ISRF1's single indexed word
        # per cycle per lane stalls (paper: 42% of execution time).
        r1 = rijndael_results["ISRF1"].stats
        r4 = rijndael_results["ISRF4"].stats
        assert r1.srf_stall_cycles > 2 * r4.srf_stall_cycles
        assert r1.srf_stall_cycles > 0.2 * rijndael_results["ISRF1"].cycles

    def test_cache_captures_locality_but_lacks_bandwidth(
        self, rijndael_results
    ):
        cache = rijndael_results["Cache"]
        base = rijndael_results["Base"]
        assert cache.offchip_words < 0.2 * base.offchip_words
        assert cache.stats.memory_stall_cycles > 0.3 * cache.cycles

    def test_base_is_memory_bound(self, rijndael_results):
        base = rijndael_results["Base"].stats
        assert base.memory_stall_cycles > base.kernel_loop_body_cycles


@pytest.fixture(scope="module")
def fft_results():
    return {
        name: fft.run(cfg, n=16, repeats=2, warmup=1)
        for name, cfg in all_configs().items()
    }


class TestFft2d:
    def test_all_configs_verified(self, fft_results):
        for name, result in fft_results.items():
            assert result.verified, f"{name} produced a wrong FFT"

    def test_isrf_eliminates_rotation_traffic(self, fft_results):
        base = fft_results["Base"].offchip_words
        isrf = fft_results["ISRF4"].offchip_words
        assert isrf / base == pytest.approx(0.5, abs=0.1)

    def test_isrf_faster_than_base(self, fft_results):
        assert fft_results["ISRF4"].cycles < fft_results["Base"].cycles

    def test_cache_between_base_and_isrf(self, fft_results):
        # The cache captures the rotation but still pays the explicit
        # reorder passes (paper §5.3).
        assert fft_results["Cache"].cycles <= fft_results["Base"].cycles
        assert fft_results["ISRF4"].cycles <= fft_results["Cache"].cycles

    def test_cache_cuts_offchip_traffic(self, fft_results):
        assert (fft_results["Cache"].offchip_words
                < fft_results["Base"].offchip_words)


@pytest.fixture(scope="module")
def sort_results():
    return {
        name: sort.run(cfg, n=512, repeats=2, warmup=1)
        for name, cfg in all_configs().items()
    }


class TestSort:
    def test_all_configs_verified(self, sort_results):
        for name, result in sort_results.items():
            assert result.verified, f"{name} did not sort"

    def test_traffic_identical_across_configs(self, sort_results):
        words = {r.offchip_words for r in sort_results.values()}
        assert len(words) == 1  # Figure 11: Sort gains no traffic

    def test_isrf_reduces_kernel_time(self, sort_results):
        assert sort_results["ISRF4"].cycles < sort_results["Base"].cycles

    def test_isrf1_equals_isrf4(self, sort_results):
        # One indexed stream -> no ISRF1/ISRF4 difference (paper §5.3).
        assert sort_results["ISRF1"].cycles == sort_results["ISRF4"].cycles

    def test_cache_gives_no_speedup(self, sort_results):
        assert sort_results["Cache"].cycles == sort_results["Base"].cycles

    def test_inlane_merge_ii_shorter_than_conditional(self, sort_results):
        runs = sort_results["ISRF4"].stats.kernel_runs
        inlane = [r.ii for r in runs if r.kernel_name.startswith("sort")]
        cond = [r.ii for r in runs if r.kernel_name.startswith("cond")]
        assert max(inlane) < min(cond)


@pytest.fixture(scope="module")
def filter_results():
    return {
        name: filter2d.run(cfg, height=32, width=32, repeats=2, warmup=1)
        for name, cfg in all_configs().items()
    }


class TestFilter:
    def test_all_configs_verified(self, filter_results):
        for name, result in filter_results.items():
            assert result.verified, f"{name} produced a wrong convolution"

    def test_isrf4_faster_kernel_loops_than_base(self, filter_results):
        base = filter_results["Base"].stats
        isrf = filter_results["ISRF4"].stats
        assert isrf.kernel_loop_body_cycles < base.kernel_loop_body_cycles

    def test_isrf1_stalls_heavily(self, filter_results):
        # Filter's 25 neighbour reads per pixel exceed ISRF1's one word
        # per cycle per lane (paper: 18% of time in SRF stalls).
        r1 = filter_results["ISRF1"].stats
        assert r1.srf_stall_cycles > 0.1 * filter_results["ISRF1"].cycles
        assert (filter_results["ISRF4"].stats.srf_stall_cycles
                < 0.3 * r1.srf_stall_cycles)

    def test_cache_equals_base(self, filter_results):
        assert (filter_results["Cache"].cycles
                == filter_results["Base"].cycles)

    def test_reference_matches_scipy(self):
        scipy_signal = pytest.importorskip("scipy.signal")
        import numpy as np

        image = np.random.default_rng(3).normal(size=(16, 24))
        padded = np.pad(image, ((0, 0), (2, 2)), mode="edge")
        expected = scipy_signal.correlate2d(
            padded, filter2d.COEFFS, mode="valid"
        )
        assert np.allclose(filter2d.reference_filter(image), expected)


@pytest.fixture(scope="module")
def ig_results():
    return {
        name: igraph.run(cfg, dataset="IG_SML", nodes=384,
                         strips_to_run=2, warmup=1)
        for name, cfg in all_configs().items()
    }


class TestIrregularGraph:
    def test_all_configs_verified(self, ig_results):
        for name, result in ig_results.items():
            assert result.verified, f"{name} produced wrong node updates"

    def test_isrf_eliminates_replication_traffic(self, ig_results):
        def per_edge(result):
            return result.offchip_words / result.details["edges_processed"]

        assert per_edge(ig_results["ISRF4"]) < 0.7 * per_edge(
            ig_results["Base"]
        )

    def test_isrf_strips_twice_as_long(self, ig_results):
        assert (ig_results["ISRF4"].details["strip_edges"]
                == 2 * ig_results["Base"].details["strip_edges"] - 10)

    def test_isrf_faster_per_edge(self, ig_results):
        def per_edge(result):
            return result.cycles / result.details["edges_processed"]

        assert per_edge(ig_results["ISRF4"]) < per_edge(ig_results["Base"])

    def test_cache_captures_reuse(self, ig_results):
        def per_edge(result):
            return result.offchip_words / result.details["edges_processed"]

        assert per_edge(ig_results["Cache"]) < 0.8 * per_edge(
            ig_results["Base"]
        )

    def test_all_indexed_access_is_crosslane(self, ig_results):
        runs = ig_results["ISRF4"].stats.kernel_runs
        edge_runs = [r for r in runs if "igraph_isrf" in r.kernel_name]
        assert edge_runs
        assert all(r.inlane_words == 0 for r in edge_runs)
        assert sum(r.crosslane_words for r in edge_runs) > 0


class TestTable4Datasets:
    def test_table4_parameters(self):
        t = igraph.TABLE4
        assert t["IG_SML"].flops_per_neighbor == 16
        assert t["IG_SCL"].flops_per_neighbor == 51
        assert t["IG_SML"].avg_degree == 4
        assert t["IG_DMS"].avg_degree == 16
        assert t["IG_SML"].base_strip_edges == 1163
        assert t["IG_SML"].isrf_strip_edges == 2316
        assert t["IG_DMS"].base_strip_edges == 265
        assert t["IG_DCS"].isrf_strip_edges == 528

    def test_graph_degree_close_to_target(self):
        g = igraph.IrregularGraph(2000, avg_degree=4, seed=1)
        assert 3.2 < g.edge_count / g.nodes < 4.8
        dense = igraph.IrregularGraph(1000, avg_degree=16, seed=1)
        assert 13.0 < dense.edge_count / dense.nodes < 19.0

    def test_strips_cover_all_nodes(self):
        g = igraph.IrregularGraph(500, avg_degree=4, seed=2)
        strips = g.strips(200)
        flattened = [v for strip in strips for v in strip]
        assert flattened == list(range(500))

    def test_compute_limited_vs_memory_limited(self):
        # SCL (51 flops) must be compute-bound on Base; SML (16 flops)
        # memory-bound (the paper's second-letter taxonomy).
        base_scl = igraph.run(base_config(), dataset="IG_SCL", nodes=384,
                              strips_to_run=2)
        base_sml = igraph.run(base_config(), dataset="IG_SML", nodes=384,
                              strips_to_run=2)
        scl = base_scl.stats
        sml = base_sml.stats
        assert (scl.kernel_loop_body_cycles / base_scl.cycles
                > sml.kernel_loop_body_cycles / base_sml.cycles)
        assert (sml.memory_stall_cycles / base_sml.cycles
                > scl.memory_stall_cycles / base_scl.cycles)
