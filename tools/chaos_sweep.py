"""Chaos gate for the crash-consistent sweep engine.

Proves the durability story end to end: a harness sweep that is
SIGKILLed at random points — with torn-write and ENOSPC faults injected
into the durable store — and then resumed converges to results
bit-identical to an uninterrupted run, with zero journaled completions
lost or re-executed and no orphan worker processes, ``.tmp`` staging
files, or unjournaled store entries left behind.

    PYTHONPATH=src python tools/chaos_sweep.py              # full gate
    PYTHONPATH=src python tools/chaos_sweep.py --smoke      # CI subset
    PYTHONPATH=src python tools/chaos_sweep.py --json out.json

Procedure:

1. **Reference run** — the selected experiments run uninterrupted in a
   fresh cache directory; the structured ``--json`` payload is the
   ground truth.
2. **Chaos runs** — up to ``--kills`` harness processes are launched
   against a second fresh cache directory (always with ``--resume``,
   which is idempotent), each SIGKILLed after a random delay drawn from
   a seeded RNG. ``REPRO_STORE_CHAOS`` injects deterministic torn
   writes and ENOSPC failures into every store put. After each kill
   the tool asserts no worker survived its parent (scanned via a
   marker variable in ``/proc/*/environ`` — no psutil needed).
3. **Final run** — one more ``--resume`` run must finish with exit 0.
4. **Audit** — the final payload's ``experiments`` block must equal
   the reference bit-for-bit; the sweep journal must contain no
   ``launch`` after a ``done`` for the same experiment and at most one
   ``done`` per experiment; after store recovery, ``fsck`` must report
   zero unjournaled entries and zero ``.tmp`` files.

Exit status 0 when every gate holds, 1 otherwise.
"""

import argparse
import json
import os
import random
import shutil
import subprocess
import sys
import tempfile
import time
import uuid

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.harness.sweep import SWEEP_JOURNAL_NAME  # noqa: E402
from repro.store.chaos import CHAOS_ENV  # noqa: E402
from repro.store.durable import DurableStore  # noqa: E402
from repro.store.journal import Journal  # noqa: E402

#: Marker env var planted in every chaos-run harness process (and
#: inherited by its forked workers) so orphans are findable in /proc.
MARKER_ENV = "REPRO_CHAOS_MARK"

#: Experiments exercised by the gate. ``fig11``/``fig12`` simulate for
#: several seconds each at small scale, so kills land mid-execution;
#: the analytic ones exercise the serve-from-journal path.
FULL_EXPERIMENTS = ["area", "energy", "fig11", "fig12"]
SMOKE_EXPERIMENTS = ["area", "energy", "fig11"]


def log(message):
    print(f"[chaos] {message}", flush=True)


def harness_env(marker=None, store_chaos=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.setdefault("REPRO_SCALE", "small")
    env.pop(CHAOS_ENV, None)
    if store_chaos:
        env[CHAOS_ENV] = store_chaos
    if marker:
        env[MARKER_ENV] = marker
    return env


def harness_command(experiments, cache_dir, json_path, jobs):
    # --json validates its directory up front, before the harness
    # creates the cache dir the payload lives in.
    os.makedirs(cache_dir, exist_ok=True)
    return [
        sys.executable, "-m", "repro.harness", *experiments,
        "--cache-dir", cache_dir, "--jobs", str(jobs),
        "--resume", "--json", json_path,
    ]


def marked_pids(marker):
    """PIDs whose environment carries ``marker`` (self excluded)."""
    needle = f"{MARKER_ENV}={marker}".encode()
    found = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit() or int(entry) == os.getpid():
            continue
        try:
            with open(f"/proc/{entry}/environ", "rb") as handle:
                if needle in handle.read():
                    found.append(int(entry))
        except OSError:
            continue
    return found


def wait_no_orphans(marker, grace_s=10.0):
    """All marker-carrying processes must exit within the grace window.

    PDEATHSIG delivery is asynchronous, so a just-killed parent's
    workers may linger for a scheduling quantum; anything alive past
    the grace window is a real orphan.
    """
    deadline = time.monotonic() + grace_s
    while time.monotonic() < deadline:
        leftover = marked_pids(marker)
        if not leftover:
            return []
        time.sleep(0.1)
    return marked_pids(marker)


def comparable_payload(payload):
    """The bit-identity surface: results only, not wall-clock."""
    return {"scale": payload.get("scale"),
            "experiments": payload.get("experiments")}


def audit_journal(journal_path, experiments):
    """Re-execution audit from the raw record stream.

    Returns a list of violation strings; empty means the journal obeys
    the contract (no launch after done, at most one done per name).
    """
    records, dropped = Journal(journal_path).read()
    violations = []
    done = set()
    done_counts = {}
    for record in records:
        event = record.get("event")
        name = record.get("name")
        if event == "sweep":
            done = set()
            done_counts = {}
        elif event == "done":
            done_counts[name] = done_counts.get(name, 0) + 1
            done.add(name)
        elif event == "launch" and name in done:
            violations.append(
                f"launch of {name!r} after its done record "
                "(journaled completion re-executed)"
            )
    for name, count in done_counts.items():
        if count > 1:
            violations.append(
                f"{count} done records for {name!r} (duplicate execution)"
            )
    missing = [n for n in experiments if n not in done]
    if missing:
        violations.append(f"no done record for: {', '.join(missing)}")
    if dropped:
        log(f"note: journal reader dropped {dropped} torn trailing "
            "record(s) — tolerated by design")
    return violations


def audit_stores(cache_dir, faults_injected=False):
    """Recover then fsck every durable store under the cache dir.

    Recovery is part of the resume contract (the next run would do the
    same lazily); what must *never* survive it is an unjournaled entry
    or a staging file. Checksum-failing entries at rest are a
    violation only when no faults were injected: the torn-write chaos
    tears the same keys on every put (draws are deterministic per
    key), so such entries legitimately remain on disk — the read path
    quarantines them and recomputes, which the bit-identity gate
    already proves.
    """
    violations = []
    report = {}
    stores = [("results", cache_dir, ".pkl")]
    traces_dir = os.path.join(cache_dir, "traces")
    if os.path.isdir(traces_dir):
        stores.append(("traces", traces_dir, ".trace.gz"))
    for label, directory, suffix in stores:
        store = DurableStore(directory, suffix=suffix)
        recovered = store.recover()
        health = store.fsck()
        report[label] = {"recovered": recovered, "fsck": health}
        if health["unjournaled"]:
            violations.append(
                f"{label}: {health['unjournaled']} unjournaled entr"
                "ies after recovery"
            )
        if health["tmp"]:
            violations.append(
                f"{label}: {health['tmp']} .tmp staging file(s) after "
                "recovery"
            )
        if health["checksum_failures"]:
            if faults_injected:
                log(f"note: {label}: {health['checksum_failures']} "
                    "torn entr(y/ies) at rest from injected faults — "
                    "detected and quarantined on read")
            else:
                violations.append(
                    f"{label}: {health['checksum_failures']} entries "
                    "fail their manifest checksum after recovery"
                )
    return violations, report


def run_to_completion(experiments, cache_dir, jobs, marker,
                      store_chaos=None, timeout=900):
    json_path = os.path.join(cache_dir, "payload.json")
    proc = subprocess.run(
        harness_command(experiments, cache_dir, json_path, jobs),
        env=harness_env(marker=marker, store_chaos=store_chaos),
        cwd=REPO, capture_output=True, text=True, timeout=timeout,
    )
    payload = None
    if os.path.exists(json_path):
        with open(json_path) as handle:
            payload = json.load(handle)
    return proc, payload


def chaos_kill_round(experiments, cache_dir, jobs, marker, delay_s,
                     store_chaos):
    """One kill round: launch with --resume, SIGKILL after delay_s.

    Returns (killed, orphans): whether the process was still alive at
    kill time, and any marker-carrying PIDs that outlived it.
    """
    json_path = os.path.join(cache_dir, "payload.json")
    proc = subprocess.Popen(
        harness_command(experiments, cache_dir, json_path, jobs),
        env=harness_env(marker=marker, store_chaos=store_chaos),
        cwd=REPO, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        proc.wait(timeout=delay_s)
        killed = False
    except subprocess.TimeoutExpired:
        proc.kill()  # SIGKILL: no cleanup handlers run, by design
        proc.wait()
        killed = True
    orphans = wait_no_orphans(marker)
    return killed, orphans


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="SIGKILL/fault-injection gate for resumable sweeps"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI subset: fewer experiments and kills")
    parser.add_argument("--kills", type=int, default=None,
                        help="number of kill rounds (default 5; smoke 2)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="harness worker processes (default 2)")
    parser.add_argument("--seed", type=int, default=1234,
                        help="RNG seed for kill delays (default 1234)")
    parser.add_argument("--min-delay", type=float, default=None,
                        help="minimum kill delay in seconds "
                             "(default 1.0; smoke 0.5)")
    parser.add_argument("--max-delay", type=float, default=None,
                        help="maximum kill delay in seconds "
                             "(default 6.0; smoke 3.0)")
    parser.add_argument("--store-chaos", default="seed=7,enospc=0.05,torn=0.05",
                        help="REPRO_STORE_CHAOS spec for chaos runs "
                             "('' disables fault injection)")
    parser.add_argument("--keep", action="store_true",
                        help="keep the scratch directory for inspection")
    parser.add_argument("--json", default=None,
                        help="write a structured gate report to PATH")
    args = parser.parse_args(argv)

    experiments = SMOKE_EXPERIMENTS if args.smoke else FULL_EXPERIMENTS
    kills = args.kills if args.kills is not None else (2 if args.smoke
                                                      else 5)
    # The smoke subset finishes in a few seconds, so kills must land
    # earlier to interrupt anything at all.
    if args.min_delay is None:
        args.min_delay = 0.5 if args.smoke else 1.0
    if args.max_delay is None:
        args.max_delay = 3.0 if args.smoke else 6.0
    rng = random.Random(args.seed)
    scratch = tempfile.mkdtemp(prefix="chaos-sweep-")
    ref_cache = os.path.join(scratch, "ref-cache")
    chaos_cache = os.path.join(scratch, "chaos-cache")
    failures = []
    report = {"experiments": experiments, "kills_requested": kills,
              "seed": args.seed, "store_chaos": args.store_chaos,
              "rounds": []}

    try:
        # ---- 1. reference run (no faults, uninterrupted) -------------
        log(f"reference run: {' '.join(experiments)}")
        ref_marker = uuid.uuid4().hex
        proc, ref_payload = run_to_completion(
            experiments, ref_cache, args.jobs, ref_marker
        )
        if proc.returncode != 0 or ref_payload is None:
            log(proc.stderr.strip() or proc.stdout.strip())
            log(f"FAIL: reference run exited {proc.returncode}")
            return 1
        reference = comparable_payload(ref_payload)

        # ---- 2. kill rounds ------------------------------------------
        marker = uuid.uuid4().hex
        completed_early = False
        for round_index in range(kills):
            delay = rng.uniform(args.min_delay, args.max_delay)
            killed, orphans = chaos_kill_round(
                experiments, chaos_cache, args.jobs, marker, delay,
                args.store_chaos or None,
            )
            round_info = {"round": round_index + 1,
                          "delay_s": round(delay, 3), "killed": killed,
                          "orphans": orphans}
            report["rounds"].append(round_info)
            log(f"round {round_index + 1}/{kills}: delay {delay:.2f}s, "
                f"{'SIGKILLed' if killed else 'finished first'}, "
                f"orphans: {orphans or 'none'}")
            if orphans:
                failures.append(
                    f"round {round_index + 1}: orphan worker PIDs "
                    f"{orphans} survived their parent's SIGKILL"
                )
            if not killed:
                completed_early = True
                break
        report["completed_early"] = completed_early

        # ---- 3. final resume to completion ---------------------------
        log("final resume run")
        proc, chaos_payload = run_to_completion(
            experiments, chaos_cache, args.jobs, marker,
            store_chaos=args.store_chaos or None,
        )
        leftover = wait_no_orphans(marker)
        if leftover:
            failures.append(f"final run left orphan PIDs {leftover}")
        if proc.returncode != 0 or chaos_payload is None:
            log(proc.stderr.strip() or proc.stdout.strip())
            failures.append(
                f"final resume run exited {proc.returncode}"
            )
        else:
            # ---- 4a. bit-identity ------------------------------------
            resumed = comparable_payload(chaos_payload)
            if resumed != reference:
                failures.append(
                    "resumed results differ from the uninterrupted "
                    "reference run"
                )
                for name in reference["experiments"]:
                    if (resumed["experiments"].get(name)
                            != reference["experiments"][name]):
                        log(f"  mismatch in experiment {name!r}")
            report["store_stats"] = chaos_payload.get("store", {})

        # ---- 4b. journal audit ---------------------------------------
        journal_path = os.path.join(chaos_cache, SWEEP_JOURNAL_NAME)
        if os.path.exists(journal_path):
            violations = audit_journal(journal_path, experiments)
            failures.extend(violations)
            report["journal_violations"] = violations
        else:
            failures.append("no sweep journal was written")

        # ---- 4c. store fsck ------------------------------------------
        store_violations, store_report = audit_stores(
            chaos_cache, faults_injected=bool(args.store_chaos)
        )
        failures.extend(store_violations)
        report["store_audit"] = store_report

    finally:
        if args.keep:
            log(f"scratch kept at {scratch}")
        else:
            shutil.rmtree(scratch, ignore_errors=True)

    report["failures"] = failures
    report["ok"] = not failures
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        log(f"wrote {args.json}")
    if failures:
        for failure in failures:
            log(f"FAIL: {failure}")
        return 1
    log("PASS: killed-and-resumed sweep is bit-identical to the "
        "reference, with no re-execution, orphans, tmp files, or "
        "unjournaled entries")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
