"""Vector-backend, trace-replay, and timing-engine regression gates.

Measures ``benchmarks/bench_headline_claims.py`` wall-clock under
pytest-benchmark on both backends (via the ``REPRO_BACKEND`` overlay),
plus the per-engine-path workloads in
``benchmarks/bench_backend_speed.py`` as diagnostics, and compares the
headline vector/scalar ratio against the committed
``BENCH_BASELINE.json``. It also runs ``tools/replay_sweep.py`` and
gates the replay/execute sweep speedup the same way, and runs
``benchmarks/bench_timing_engine.py`` to gate the columnar timing
engine's object/columnar wall-clock speedup (aggregate over the
workload set — honest measured number, not an aspiration; it fails
when the columnar engine regresses below
``baseline_speedup * (1 - tolerance)``):

    PYTHONPATH=src python tools/bench_gate.py            # gate
    PYTHONPATH=src python tools/bench_gate.py --update   # re-baseline

The backend gate fails when the headline ratio exceeds
``baseline_ratio * (1 + tolerance)`` — i.e. the vector backend got
more than ``tolerance`` (default 20%) slower *relative to the scalar
backend on the same machine*. The replay gate fails when the sweep
speedup drops below ``baseline_speedup * (1 - tolerance)`` — i.e. the
replay mode stopped paying for itself. Gating on ratios rather than
absolute seconds makes both gates machine-independent (a slow CI
runner scales both sides alike). Each backend's headline time is the
best of two fresh processes, the diagnostic workloads use best-of-five
rounds, and the replay sweep keeps the best of two passes, so one
noisy round cannot fail a gate or bake a skewed baseline. Re-baseline
deliberately with ``--update`` after an intentional engine or
timing-model change.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join(REPO, "BENCH_BASELINE.json")
SPEED_FILE = os.path.join(REPO, "benchmarks", "bench_backend_speed.py")
TIMING_FILE = os.path.join(REPO, "benchmarks", "bench_timing_engine.py")
HEADLINE_FILE = os.path.join(REPO, "benchmarks",
                             "bench_headline_claims.py")
REPLAY_SWEEP = os.path.join(REPO, "tools", "replay_sweep.py")

#: Fresh processes per backend for the headline measurement; the gate
#: uses the best, shielding the ratio from one-off machine noise.
HEADLINE_RUNS = 2

#: Fresh processes for the replay sweep; the gate keeps the best
#: speedup for the same reason.
REPLAY_RUNS = 2


def _pytest_benchmark(bench_file: str, extra_env=None) -> dict:
    """Run one benchmark file; returns the parsed pytest-benchmark JSON."""
    with tempfile.TemporaryDirectory() as tmp:
        out_path = os.path.join(tmp, "bench.json")
        env = dict(os.environ)
        env.update(extra_env or {})
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(REPO, "src"),
                        env.get("PYTHONPATH")) if p
        )
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", bench_file, "-q",
             "-p", "no:cacheprovider",
             f"--benchmark-json={out_path}"],
            cwd=REPO, env=env,
        )
        if proc.returncode != 0:
            raise SystemExit(f"benchmark run failed: {bench_file}")
        with open(out_path) as handle:
            return json.load(handle)


def run_benchmarks() -> dict:
    """Measure everything; returns workload -> backend -> min seconds.

    The gated ``headline`` workload is timed in a fresh process per
    backend (the ``REPRO_BACKEND`` overlay steers every preset), best
    of :data:`HEADLINE_RUNS`; the diagnostic engine-path workloads come
    from one in-process sweep of ``bench_backend_speed.py``.
    """
    timings = {"headline": {}}
    for backend in ("scalar", "vector"):
        best = None
        for _ in range(HEADLINE_RUNS):
            payload = _pytest_benchmark(
                HEADLINE_FILE, {"REPRO_BACKEND": backend}
            )
            [bench] = payload["benchmarks"]
            seconds = bench["stats"]["min"]
            best = seconds if best is None else min(best, seconds)
        timings["headline"][backend] = best
    for bench in _pytest_benchmark(SPEED_FILE)["benchmarks"]:
        workload = bench["params"]["workload"]
        backend = bench["params"]["backend"]
        timings.setdefault(workload, {})[backend] = bench["stats"]["min"]
    return timings


def run_timing_engine_benchmarks() -> dict:
    """Measure the timing engines; returns workload -> engine -> seconds."""
    timings = {}
    for bench in _pytest_benchmark(TIMING_FILE)["benchmarks"]:
        workload = bench["params"]["workload"]
        engine = bench["params"]["engine"]
        timings.setdefault(workload, {})[engine] = bench["stats"]["min"]
    return timings


def timing_engine_speedup(timings: dict) -> float:
    """Aggregate object/columnar speedup over the workload set.

    Summing seconds before dividing weights each workload by its real
    runtime, matching what a user of the engine experiences end to end.
    """
    total_object = sum(t["object"] for t in timings.values())
    total_columnar = sum(t["columnar"] for t in timings.values())
    return total_object / total_columnar


def run_replay_sweep() -> dict:
    """Measure the replay sweep; returns the best-of-N sweep report.

    Each pass is a fresh process running the full ``replay_sweep.py``
    grid, which itself hard-fails unless replayed stats are
    bit-identical to executed ones — so a gate pass also certifies
    replay correctness on this machine.
    """
    best = None
    for _ in range(REPLAY_RUNS):
        with tempfile.TemporaryDirectory() as tmp:
            out_path = os.path.join(tmp, "replay.json")
            env = dict(os.environ)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (os.path.join(REPO, "src"),
                            env.get("PYTHONPATH")) if p
            )
            proc = subprocess.run(
                [sys.executable, REPLAY_SWEEP, "--json", out_path],
                cwd=REPO, env=env,
            )
            if proc.returncode != 0:
                raise SystemExit("replay sweep failed")
            with open(out_path) as handle:
                report = json.load(handle)
        if best is None or report["speedup"] > best["speedup"]:
            best = report
    return best


def ratios_of(timings: dict) -> dict:
    return {
        workload: backends["vector"] / backends["scalar"]
        for workload, backends in sorted(timings.items())
    }


def gate(timings: dict, replay_report: dict, engine_timings: dict,
         baseline: dict) -> int:
    tolerance = baseline.get("tolerance", 0.20)
    measured = ratios_of(timings)
    print(f"{'workload':<12} {'scalar s':>9} {'vector s':>9} "
          f"{'ratio':>7} {'baseline':>9}")
    for workload, ratio in measured.items():
        base = baseline["ratios"].get(workload)
        print(f"{workload:<12} {timings[workload]['scalar']:>9.3f} "
              f"{timings[workload]['vector']:>9.3f} {ratio:>7.3f} "
              f"{base if base is not None else float('nan'):>9.3f}")
    status = 0
    headline = measured["headline"]
    base_headline = baseline["ratios"]["headline"]
    limit = base_headline * (1 + tolerance)
    print(f"\nheadline vector/scalar ratio: {headline:.3f} "
          f"(baseline {base_headline:.3f}, limit {limit:.3f})")
    if headline > limit:
        print(f"FAIL: vector backend regressed beyond {tolerance:.0%} "
              "on bench_headline_claims")
        status = 1
    else:
        print("OK: within tolerance")
    replay_base = baseline.get("replay")
    if replay_base is None:
        print("FAIL: no replay baseline recorded; run with --update")
        return 1
    replay_tolerance = replay_base.get("tolerance", 0.15)
    speedup = replay_report["speedup"]
    floor = replay_base["speedup"] * (1 - replay_tolerance)
    print(f"replay sweep speedup: {speedup:.3f}x "
          f"(baseline {replay_base['speedup']:.3f}x, floor {floor:.3f}x, "
          f"stats bit-identical)")
    if speedup < floor:
        print(f"FAIL: replay sweep benefit eroded beyond "
              f"{replay_tolerance:.0%} on tools/replay_sweep.py")
        status = 1
    else:
        print("OK: within tolerance")
    engine_base = baseline.get("timing_engine")
    if engine_base is None:
        print("FAIL: no timing-engine baseline recorded; "
              "run with --update")
        return 1
    engine_tolerance = engine_base.get("tolerance", 0.20)
    print(f"\n{'workload':<12} {'object s':>9} {'columnar s':>11} "
          f"{'speedup':>8}")
    for workload, engines in sorted(engine_timings.items()):
        print(f"{workload:<12} {engines['object']:>9.3f} "
              f"{engines['columnar']:>11.3f} "
              f"{engines['object'] / engines['columnar']:>8.3f}")
    engine_speedup = timing_engine_speedup(engine_timings)
    engine_floor = engine_base["speedup"] * (1 - engine_tolerance)
    print(f"timing-engine object/columnar speedup: "
          f"{engine_speedup:.3f}x (baseline "
          f"{engine_base['speedup']:.3f}x, floor {engine_floor:.3f}x)")
    if engine_speedup < engine_floor:
        print(f"FAIL: columnar timing engine regressed beyond "
              f"{engine_tolerance:.0%} on bench_timing_engine")
        status = 1
    else:
        print("OK: within tolerance")
    return status


def update(timings: dict, replay_report: dict,
           engine_timings: dict) -> None:
    ratios = ratios_of(timings)
    baseline = {
        "_comment": (
            "Vector-backend, trace-replay, and timing-engine speed "
            "baseline; see tools/bench_gate.py. Gated metrics: the "
            "'headline' vector/scalar wall-clock ratio, the "
            "replay/execute sweep speedup, and the aggregate "
            "object/columnar timing-engine speedup (all "
            "machine-independent); other workloads and recorded "
            "seconds are diagnostic."
        ),
        "tolerance": 0.20,
        "ratios": {w: round(r, 3) for w, r in ratios.items()},
        "replay": {
            "tolerance": 0.15,
            "speedup": replay_report["speedup"],
            "recorded": {
                key: replay_report[key]
                for key in ("sweep_points", "execute_s", "record_s",
                            "replay_s")
            },
        },
        "timing_engine": {
            "tolerance": 0.20,
            "speedup": round(timing_engine_speedup(engine_timings), 3),
            "workload_speedups": {
                workload: round(
                    engines["object"] / engines["columnar"], 3
                )
                for workload, engines in sorted(engine_timings.items())
            },
            "recorded_seconds": {
                workload: {engine: round(seconds, 3)
                           for engine, seconds in sorted(engines.items())}
                for workload, engines in sorted(engine_timings.items())
            },
        },
        "recorded_seconds": {
            workload: {backend: round(seconds, 3)
                       for backend, seconds in sorted(backends.items())}
            for workload, backends in sorted(timings.items())
        },
    }
    with open(BASELINE_PATH, "w") as handle:
        json.dump(baseline, handle, indent=2)
        handle.write("\n")
    print(f"wrote {BASELINE_PATH}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true",
                        help="rewrite BENCH_BASELINE.json from this run")
    args = parser.parse_args()
    timings = run_benchmarks()
    replay_report = run_replay_sweep()
    engine_timings = run_timing_engine_benchmarks()
    if args.update:
        # Measure twice, keep the per-cell best: one outlier round on a
        # busy machine must not bake a skewed ratio into the baseline.
        second = run_benchmarks()
        for workload, backends in second.items():
            for backend, seconds in backends.items():
                timings[workload][backend] = min(
                    timings[workload][backend], seconds
                )
        second_engines = run_timing_engine_benchmarks()
        for workload, engines in second_engines.items():
            for engine, seconds in engines.items():
                engine_timings[workload][engine] = min(
                    engine_timings[workload][engine], seconds
                )
        update(timings, replay_report, engine_timings)
        return 0
    try:
        with open(BASELINE_PATH) as handle:
            baseline = json.load(handle)
    except OSError:
        raise SystemExit(
            f"missing {BASELINE_PATH}; run with --update to create it"
        )
    return gate(timings, replay_report, engine_timings, baseline)


if __name__ == "__main__":
    raise SystemExit(main())
