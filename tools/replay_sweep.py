"""Measure the trace-replay timing mode on a real config sweep.

Runs a Figure 15-style address/data separation sweep (every benchmark x
N timing-only variants of the ISRF4 machine) three ways and reports
honest wall-clock numbers:

    execute   every sweep point functionally executed (the old way)
    record    one recording run per benchmark (the one-off trace cost)
    replay    every sweep point re-timed from the recorded traces

All sweep points of one benchmark share a functional trace key (the
swept fields are timing-only), so replay touches the kernel interpreter
zero times. Replayed stats are checked bit-identical against the
executed ones at every sweep point; a mismatch is a hard failure.

    PYTHONPATH=src python tools/replay_sweep.py              # full grid
    PYTHONPATH=src python tools/replay_sweep.py --smoke      # CI subset
    PYTHONPATH=src python tools/replay_sweep.py --json out.json

The replay/execute speedup is bounded by Amdahl's law: replay removes
only functional kernel execution (~20-25% of a sweep point's runtime at
small scale), while the cycle-accurate timing model — the whole point
of a timing sweep — still runs in full. Expect ~1.2-1.4x on the sweep
body, not a headline multiplier; ``tools/bench_gate.py`` gates on the
measured ratio staying in that band, not on a wish.
"""

import argparse
import json
import sys
import tempfile
import time

from repro.config.presets import isrf4_config
from repro.harness import figures
from repro.machine.replay import TraceStore
from repro.machine import replay

#: Swept timing-only field values (Figure 15's in-lane separations).
SEPARATIONS = (2, 4, 6, 8, 10)
SMOKE_SEPARATIONS = (2, 8)
SMOKE_BENCHMARKS = ("FFT 2D", "IG_SML")


def sweep_configs(separations, timing_source):
    return [
        isrf4_config(
            inlane_addr_data_separation=sep, timing_source=timing_source
        )
        for sep in separations
    ]


def run_sweep(benchmarks, configs, scale, store=None):
    """One full sweep pass; returns (seconds, {(bench, i): stats})."""
    stats = {}
    start = time.perf_counter()
    for bench in benchmarks:
        for index, config in enumerate(configs):
            if store is not None:
                with replay.session(store, bench, config, scale) as sess:
                    result = figures._simulate(bench, config, scale)
                if sess.mode != "replay":
                    raise SystemExit(
                        f"{bench}: expected a trace hit at sweep point "
                        f"{index} but recorded instead"
                    )
            else:
                result = figures._simulate(bench, config, scale)
            stats[(bench, index)] = result.stats
    return time.perf_counter() - start, stats


def run_record(benchmarks, config, scale, store):
    """Record one trace per benchmark; returns seconds."""
    start = time.perf_counter()
    for bench in benchmarks:
        with replay.session(store, bench, config, scale) as sess:
            figures._simulate(bench, config, scale)
        if sess.mode != "record":
            raise SystemExit(f"{bench}: trace unexpectedly already stored")
    return time.perf_counter() - start


def measure(benchmarks, separations, scale) -> dict:
    execute_configs = sweep_configs(separations, "execute")
    replay_configs = sweep_configs(separations, "replay")
    with tempfile.TemporaryDirectory() as trace_dir:
        store = TraceStore(trace_dir)
        execute_s, executed = run_sweep(
            benchmarks, execute_configs, scale
        )
        record_s = run_record(benchmarks, replay_configs[0], scale, store)
        replay_s, replayed = run_sweep(
            benchmarks, replay_configs, scale, store=store
        )
    mismatched = [
        f"{bench} @ separation {separations[index]}"
        for (bench, index), stats in executed.items()
        if stats != replayed[(bench, index)]
    ]
    if mismatched:
        raise SystemExit(
            "replayed stats differ from executed stats: "
            + ", ".join(mismatched)
        )
    return {
        "scale": scale,
        "benchmarks": len(benchmarks),
        "sweep_points": len(benchmarks) * len(separations),
        "execute_s": round(execute_s, 3),
        "record_s": round(record_s, 3),
        "replay_s": round(replay_s, 3),
        "speedup": round(execute_s / replay_s, 3),
        "bit_identical": True,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced grid for CI (2 benchmarks x 2 "
                             "separations), same bit-identical check")
    parser.add_argument("--json", metavar="PATH",
                        help="also dump the measurements as JSON")
    args = parser.parse_args()
    benchmarks = SMOKE_BENCHMARKS if args.smoke else figures.BENCHMARKS
    separations = SMOKE_SEPARATIONS if args.smoke else SEPARATIONS
    scale = figures.default_scale()
    print(f"# replay sweep ({len(benchmarks)} benchmarks x "
          f"{len(separations)} separations, scale: {scale})")
    report = measure(benchmarks, separations, scale)
    print(f"execute sweep : {report['execute_s']:8.3f} s "
          f"({report['sweep_points']} points)")
    print(f"record pass   : {report['record_s']:8.3f} s "
          f"({report['benchmarks']} traces, one-off)")
    print(f"replay sweep  : {report['replay_s']:8.3f} s "
          f"({report['sweep_points']} points)")
    print(f"replay/execute speedup: {report['speedup']:.3f}x "
          "(stats bit-identical)")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
