"""Index-locality sweep over the sparse suite, with a sensitivity gate.

Runs SpMV (CSR) with the same sparsity structure under the three column
index orderings (``sorted``/``random``/``clustered``, see
``repro.apps.spmv.ORDERINGS``) on the Base, ISRF4 and Cache machines,
prints the cycles-per-nonzero table, and *gates* on the property the
sweep exists to exhibit: the indexed SRF is ordering-sensitive (its
ISRF4/Base cycle ratio must spread across orderings, with the
power-law-clustered ordering — the bank-conflict worst case — at the
top), while every run still verifies bit-exactly against the scipy
reference.

    PYTHONPATH=src python tools/locality_sweep.py            # full grid
    PYTHONPATH=src python tools/locality_sweep.py --smoke    # CI subset
    PYTHONPATH=src python tools/locality_sweep.py --json out.json
"""

import argparse
import json
import sys
import time

from repro.apps.spmv import ORDERINGS
from repro.config.presets import all_configs
from repro.harness import figures

#: Presets compared at every sweep point (full grid).
CONFIGS = ("Base", "ISRF4", "Cache")

#: CI subset: the two extreme orderings, baseline vs indexed machine.
SMOKE_ORDERINGS = ("sorted", "clustered")
SMOKE_CONFIGS = ("Base", "ISRF4")

#: Minimum ISRF4/Base ratio spread across orderings for the gate. The
#: observed small-scale spread is ~0.06 (1.155 sorted vs 1.219
#: clustered); anything positive proves sensitivity, the floor just
#: keeps noise from passing vacuously.
MIN_RATIO_SPREAD = 0.01


def run_grid(orderings, config_names, scale):
    """Simulate every ordering x config cell; returns the cell dict."""
    configs = all_configs()
    cells = {}
    for ordering in orderings:
        name = f"SpMV_CSR@{ordering}"
        for config_name in config_names:
            result = figures._simulate(name, configs[config_name], scale)
            work = figures._work_units(result)
            cells[(ordering, config_name)] = {
                "cycles_per_nnz": result.cycles / work,
                "offchip_per_nnz": result.offchip_words / work,
            }
    return cells


def gate(cells, orderings) -> dict:
    """The sensitivity gate: ISRF ratio spreads, clustered on top."""
    ratios = {
        ordering: (cells[(ordering, "ISRF4")]["cycles_per_nnz"]
                   / cells[(ordering, "Base")]["cycles_per_nnz"])
        for ordering in orderings
    }
    spread = max(ratios.values()) - min(ratios.values())
    worst = max(ratios, key=ratios.get)
    failures = []
    if spread < MIN_RATIO_SPREAD:
        failures.append(
            f"ISRF4/Base ratio spread {spread:.4f} < {MIN_RATIO_SPREAD} "
            "— the indexed SRF should be ordering-sensitive"
        )
    if "clustered" in ratios and worst != "clustered":
        failures.append(
            f"worst ISRF4/Base ordering is {worst!r}, expected "
            "'clustered' (power-law indices concentrate bank conflicts)"
        )
    return {"ratios": ratios, "spread": spread, "worst": worst,
            "failures": failures}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced grid for CI (2 orderings x 2 "
                             "configs), same sensitivity gate")
    parser.add_argument("--json", metavar="PATH",
                        help="also dump the measurements as JSON")
    args = parser.parse_args()
    orderings = SMOKE_ORDERINGS if args.smoke else ORDERINGS
    config_names = SMOKE_CONFIGS if args.smoke else CONFIGS
    scale = figures.default_scale()
    print(f"# locality sweep (SpMV CSR, {len(orderings)} orderings x "
          f"{len(config_names)} configs, scale: {scale})")
    start = time.perf_counter()
    cells = run_grid(orderings, config_names, scale)
    elapsed = time.perf_counter() - start
    header = "  ".join(f"{c:>8}" for c in config_names)
    print(f"{'ordering':>10}  {header}  ISRF4/Base")
    verdict = gate(cells, orderings)
    for ordering in orderings:
        row = "  ".join(
            f"{cells[(ordering, c)]['cycles_per_nnz']:8.2f}"
            for c in config_names
        )
        print(f"{ordering:>10}  {row}  {verdict['ratios'][ordering]:10.3f}")
    print(f"ratio spread: {verdict['spread']:.4f} "
          f"(worst ordering: {verdict['worst']}, {elapsed:.1f}s)")
    if args.json:
        report = {
            "scale": scale,
            "cells": {f"{o}/{c}": v for (o, c), v in cells.items()},
            "ratios": verdict["ratios"],
            "spread": verdict["spread"],
            "worst": verdict["worst"],
            "seconds": round(elapsed, 3),
        }
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    if verdict["failures"]:
        for failure in verdict["failures"]:
            print(f"GATE FAIL: {failure}", file=sys.stderr)
        return 1
    print("gate ok: indexed SRF is ordering-sensitive")
    return 0


if __name__ == "__main__":
    sys.exit(main())
